package updatelog

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"viptree/internal/model"
)

// fakeApplier records applied updates and detects any violation of the
// single-writer contract: concurrent entry into ApplyUpdate/PublishEpoch,
// or a publish that does not cover every applied seq.
type fakeApplier struct {
	inside    atomic.Int32
	reentered atomic.Bool

	mu        sync.Mutex
	applied   []Record
	published []uint64
	rejectID  int // ApplyUpdate fails for this r.ID (when > 0)
	nextID    int
}

var errRejected = errors.New("rejected")

func (f *fakeApplier) enter() {
	if f.inside.Add(1) != 1 {
		f.reentered.Store(true)
	}
}

func (f *fakeApplier) leave() { f.inside.Add(-1) }

func (f *fakeApplier) ApplyUpdate(r *Record) error {
	f.enter()
	defer f.leave()
	if f.rejectID > 0 && r.ID == f.rejectID {
		return errRejected
	}
	if r.Op == OpInsert {
		f.mu.Lock()
		f.nextID++
		r.ID = f.nextID
		f.mu.Unlock()
	}
	f.mu.Lock()
	f.applied = append(f.applied, *r)
	f.mu.Unlock()
	return nil
}

func (f *fakeApplier) PublishEpoch(seq uint64) {
	f.enter()
	defer f.leave()
	f.mu.Lock()
	f.published = append(f.published, seq)
	f.mu.Unlock()
}

func loc(p int) model.Location {
	return model.Location{Partition: model.PartitionID(p)}
}

// TestSubmitAssignsMonotonicSeqs drives sequential submissions and checks
// the seq numbering, head/published tracking and history content.
func TestSubmitAssignsMonotonicSeqs(t *testing.T) {
	f := &fakeApplier{}
	l := New(f, 0)
	for i := 1; i <= 5; i++ {
		id, seq, err := l.Submit(OpInsert, 0, loc(i))
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		if seq != uint64(i) {
			t.Fatalf("Submit %d: seq = %d, want %d", i, seq, i)
		}
		if id != i {
			t.Fatalf("Submit %d: id = %d, want %d (applier-assigned)", i, id, i)
		}
		if l.HeadSeq() != uint64(i) || l.PublishedSeq() != uint64(i) {
			t.Fatalf("after submit %d: head=%d pub=%d", i, l.HeadSeq(), l.PublishedSeq())
		}
	}
	recs, err := l.Records(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("Records = %d entries, want 5", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
		if r.Loc.Partition != model.PartitionID(i+1) {
			t.Fatalf("record %d has partition %d", i, r.Loc.Partition)
		}
	}
}

// TestFailedUpdateConsumesNoSeq submits a rejected op between two applied
// ones: the failure must surface to its submitter, consume no sequence
// number, and leave no hole in the history.
func TestFailedUpdateConsumesNoSeq(t *testing.T) {
	f := &fakeApplier{rejectID: 77}
	l := New(f, 0)
	if _, seq, err := l.Submit(OpDelete, 1, model.Location{}); err != nil || seq != 1 {
		t.Fatalf("first submit: seq=%d err=%v", seq, err)
	}
	if _, seq, err := l.Submit(OpDelete, 77, model.Location{}); !errors.Is(err, errRejected) || seq != 0 {
		t.Fatalf("rejected submit: seq=%d err=%v, want seq=0 err=errRejected", seq, err)
	}
	if _, seq, err := l.Submit(OpDelete, 2, model.Location{}); err != nil || seq != 2 {
		t.Fatalf("third submit: seq=%d err=%v", seq, err)
	}
	recs, _ := l.Records(0, 0)
	if len(recs) != 2 || recs[0].ID != 1 || recs[1].ID != 2 {
		t.Fatalf("history = %+v, want ids 1,2", recs)
	}
}

// gateApplier wraps fakeApplier but blocks inside the first ApplyUpdate
// until released, letting tests build a combined batch deterministically
// behind a stalled leader.
type gateApplier struct {
	fakeApplier
	entered chan struct{} // closed once the first ApplyUpdate is inside
	release chan struct{} // the first ApplyUpdate returns when this closes
	first   sync.Once
}

func (g *gateApplier) ApplyUpdate(r *Record) error {
	g.first.Do(func() {
		close(g.entered)
		<-g.release
	})
	return g.fakeApplier.ApplyUpdate(r)
}

// TestRejectedInCombinedBatchWakesAll is the regression test for the
// combining-leader aliasing bug: with the leader blocked mid-apply, a
// rejected update queues ahead of applied ones so all three land in one
// combined batch. Every submitter must be woken exactly once — the
// rejected one with its error, the others with their seqs — and no
// duplicate wakeup token may leak into the pooled request (a later
// Submit must apply, not return early with stale state).
func TestRejectedInCombinedBatchWakesAll(t *testing.T) {
	g := &gateApplier{
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
	g.rejectID = 77
	l := New(g, 0)

	type result struct {
		seq uint64
		err error
	}
	submit := func(id int) <-chan result {
		c := make(chan result, 1)
		go func() {
			_, seq, err := l.Submit(OpDelete, id, model.Location{})
			c <- result{seq, err}
		}()
		return c
	}
	queued := func(n int) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			l.mu.Lock()
			q := len(l.queue)
			l.mu.Unlock()
			if q == n {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("queue never reached %d pending requests", n)
			}
			time.Sleep(time.Millisecond)
		}
	}

	leaderC := submit(1) // becomes leader, stalls inside ApplyUpdate
	<-g.entered
	rejectedC := submit(77) // first in the next combined batch
	queued(1)
	okB := submit(2)
	okC := submit(3)
	queued(3)
	close(g.release)

	wait := func(name string, c <-chan result) result {
		t.Helper()
		select {
		case r := <-c:
			return r
		case <-time.After(10 * time.Second):
			t.Fatalf("%s: Submit never returned (lost wakeup)", name)
			return result{}
		}
	}
	if r := wait("leader", leaderC); r.err != nil || r.seq != 1 {
		t.Fatalf("leader: seq=%d err=%v, want seq=1", r.seq, r.err)
	}
	if r := wait("rejected", rejectedC); !errors.Is(r.err, errRejected) || r.seq != 0 {
		t.Fatalf("rejected: seq=%d err=%v, want seq=0 errRejected", r.seq, r.err)
	}
	seqs := map[uint64]bool{}
	for name, c := range map[string]<-chan result{"okB": okB, "okC": okC} {
		r := wait(name, c)
		if r.err != nil {
			t.Fatalf("%s: %v", name, r.err)
		}
		seqs[r.seq] = true
	}
	if !seqs[2] || !seqs[3] {
		t.Fatalf("applied seqs = %v, want {2,3}", seqs)
	}
	// A leaked duplicate token would satisfy this Submit's wait before
	// its update is applied.
	if _, seq, err := l.Submit(OpDelete, 4, model.Location{}); err != nil || seq != 4 {
		t.Fatalf("post-batch submit: seq=%d err=%v, want seq=4", seq, err)
	}
	if l.HeadSeq() != 4 {
		t.Fatalf("head = %d, want 4", l.HeadSeq())
	}
}

// TestStartSeqOffset checks a log constructed over already-published state:
// numbering continues from startSeq and history replay is bounded below.
func TestStartSeqOffset(t *testing.T) {
	f := &fakeApplier{}
	l := New(f, 10)
	if _, seq, err := l.Submit(OpDelete, 1, model.Location{}); err != nil || seq != 11 {
		t.Fatalf("submit: seq=%d err=%v, want 11", seq, err)
	}
	if _, err := l.Records(5, 0); err == nil {
		t.Fatal("Records(5) before log start succeeded")
	}
	recs, err := l.Records(11, 0)
	if err != nil || len(recs) != 1 {
		t.Fatalf("Records(11) = %v, %v", recs, err)
	}
	if _, err := l.Subscribe(5, 1); err == nil {
		t.Fatal("Subscribe(5) before log start succeeded")
	}
}

// TestConcurrentSubmitSingleWriter hammers Submit from many goroutines and
// verifies the single-writer contract (no concurrent ApplyUpdate or
// PublishEpoch), gap-free seqs, and that every publish covers the batch.
func TestConcurrentSubmitSingleWriter(t *testing.T) {
	f := &fakeApplier{}
	l := New(f, 0)
	const goroutines = 8
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, _, err := l.Submit(OpInsert, 0, loc(g)); err != nil {
					t.Errorf("Submit: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if f.reentered.Load() {
		t.Fatal("applier was entered concurrently: single-writer contract violated")
	}
	const total = goroutines * perG
	if l.HeadSeq() != total || l.PublishedSeq() != total {
		t.Fatalf("head=%d pub=%d, want %d", l.HeadSeq(), l.PublishedSeq(), total)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.applied) != total {
		t.Fatalf("applied %d records, want %d", len(f.applied), total)
	}
	for i, r := range f.applied {
		if r.Seq != uint64(i+1) {
			t.Fatalf("applied record %d has seq %d: gap or reorder", i, r.Seq)
		}
	}
	// Publishes must be strictly increasing and end at the head; there must
	// be at most one per applied record (batching can only reduce them).
	if n := len(f.published); n == 0 || n > total {
		t.Fatalf("%d publishes for %d updates", len(f.published), total)
	}
	for i := 1; i < len(f.published); i++ {
		if f.published[i] <= f.published[i-1] {
			t.Fatalf("publish seqs not increasing: %d after %d", f.published[i], f.published[i-1])
		}
	}
	if last := f.published[len(f.published)-1]; last != total {
		t.Fatalf("last publish covers seq %d, want %d", last, total)
	}
}

// TestSubscribersExactlyOnceInOrder attaches several subscribers — one from
// the start, one mid-stream resuming from a recorded seq, one tailing from
// head+1 — and verifies each receives exactly the expected updates, in
// order, exactly once, while submissions continue concurrently.
func TestSubscribersExactlyOnceInOrder(t *testing.T) {
	f := &fakeApplier{}
	l := New(f, 0)

	const phase1 = 50
	const phase2 = 160 // divisible by the 4 submitter goroutines
	const total = phase1 + phase2
	for i := 0; i < phase1; i++ {
		if _, _, err := l.Submit(OpInsert, 0, loc(i)); err != nil {
			t.Fatal(err)
		}
	}

	fromStart, err := l.Subscribe(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := l.Subscribe(phase1/2, 4)
	if err != nil {
		t.Fatal(err)
	}
	tail, err := l.Subscribe(l.HeadSeq()+1, 4)
	if err != nil {
		t.Fatal(err)
	}

	collect := func(s *Subscription, want int) <-chan []Record {
		out := make(chan []Record, 1)
		go func() {
			var got []Record
			for r := range s.Events() {
				got = append(got, r)
				if len(got) == want {
					break
				}
			}
			out <- got
		}()
		return out
	}
	c1 := collect(fromStart, total)
	c2 := collect(resumed, total-phase1/2+1)
	c3 := collect(tail, phase2)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < phase2/4; i++ {
				if _, _, err := l.Submit(OpInsert, 0, loc(i)); err != nil {
					t.Errorf("Submit: %v", err)
				}
			}
		}()
	}
	wg.Wait()

	check := func(name string, got []Record, fromSeq uint64) {
		t.Helper()
		for i, r := range got {
			want := fromSeq + uint64(i)
			if r.Seq != want {
				t.Fatalf("%s: event %d has seq %d, want %d (gap, duplicate or reorder)", name, i, r.Seq, want)
			}
		}
	}
	deadline := time.After(10 * time.Second)
	wait := func(name string, c <-chan []Record) []Record {
		select {
		case got := <-c:
			return got
		case <-deadline:
			t.Fatalf("%s: timed out waiting for events", name)
			return nil
		}
	}
	check("fromStart", wait("fromStart", c1), 1)
	check("resumed", wait("resumed", c2), phase1/2)
	check("tail", wait("tail", c3), phase1+1)

	fromStart.Close()
	resumed.Close()
	tail.Close()
}

// TestSubscriptionCloseEndsStream verifies Close terminates the Events
// channel (and is idempotent).
func TestSubscriptionCloseEndsStream(t *testing.T) {
	l := New(&fakeApplier{}, 0)
	s, err := l.Subscribe(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close()
	select {
	case _, ok := <-s.Events():
		if ok {
			t.Fatal("received an event on a closed subscription")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Events channel not closed after Close")
	}
}

// TestSlowSubscriberBackpressure pins the backpressure contract: a
// subscriber that stops draining blocks only its own delivery (events queue
// in the log's history), the writer keeps applying updates at full speed,
// and once the subscriber resumes it receives the whole backlog in order
// with nothing dropped.
func TestSlowSubscriberBackpressure(t *testing.T) {
	f := &fakeApplier{}
	l := New(f, 0)
	s, err := l.Subscribe(0, 1) // minimal buffer: stalls after one event
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// With the subscriber not draining, the writer must still complete
	// many updates — bounded time, no deadlock.
	const total = 500
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			if _, _, err := l.Submit(OpInsert, 0, loc(i)); err != nil {
				t.Errorf("Submit: %v", err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("writer blocked behind a slow subscriber")
	}
	if l.HeadSeq() != total {
		t.Fatalf("head = %d, want %d", l.HeadSeq(), total)
	}

	// The stalled subscriber resumes and drains the full backlog in order.
	for i := 0; i < total; i++ {
		select {
		case r := <-s.Events():
			if r.Seq != uint64(i+1) {
				t.Fatalf("resumed event %d has seq %d", i, r.Seq)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("backlog drain stalled at event %d", i)
		}
	}
}

// TestTruncateBoundsHistory drops a consumed prefix and verifies the
// retained window: dropped seqs are unavailable to Records and
// Subscribe, later seqs replay as before, and sequence numbering is
// unaffected.
func TestTruncateBoundsHistory(t *testing.T) {
	l := New(&fakeApplier{}, 0)
	for i := 0; i < 10; i++ {
		if _, _, err := l.Submit(OpInsert, 0, loc(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Truncate(5); got != 5 {
		t.Fatalf("Truncate(5) = %d, want 5", got)
	}
	if got := l.Truncate(3); got != 0 {
		t.Fatalf("Truncate(3) behind the cut at 5 = %d, want 0", got)
	}
	recs, err := l.Records(0, 0)
	if err != nil || len(recs) != 5 || recs[0].Seq != 6 {
		t.Fatalf("Records after truncate = %v, %v; want seqs 6..10", recs, err)
	}
	if _, err := l.Records(3, 0); err == nil {
		t.Fatal("Records(3) into the truncated range succeeded")
	}
	if _, err := l.Subscribe(5, 1); err == nil {
		t.Fatal("Subscribe(5) into the truncated range succeeded")
	}
	s, err := l.Subscribe(0, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for want := uint64(6); want <= 10; want++ {
		select {
		case r := <-s.Events():
			if r.Seq != want {
				t.Fatalf("event seq = %d, want %d", r.Seq, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for seq %d", want)
		}
	}
	if _, seq, err := l.Submit(OpInsert, 0, loc(0)); err != nil || seq != 11 {
		t.Fatalf("post-truncate submit: seq=%d err=%v, want seq=11", seq, err)
	}
}

// TestTruncateRetainsUnconsumed pins the subscriber-safety floor:
// history an active subscription has not yet consumed survives
// Truncate, so a stalled subscriber still receives everything in order;
// once it closes, the same Truncate reclaims the lot.
func TestTruncateRetainsUnconsumed(t *testing.T) {
	l := New(&fakeApplier{}, 0)
	s, err := l.Subscribe(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	const total = 5
	for i := 0; i < total; i++ {
		if _, _, err := l.Submit(OpInsert, 0, loc(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Nothing drained yet: the pump has consumed at most what fits in
	// its buffer, so the cut must stop below total.
	if got := l.Truncate(total); got >= total {
		t.Fatalf("Truncate(%d) with a stalled subscriber = %d", total, got)
	}
	for want := uint64(1); want <= total; want++ {
		select {
		case r := <-s.Events():
			if r.Seq != want {
				t.Fatalf("event seq = %d, want %d (truncated under an active subscriber)", r.Seq, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for seq %d", want)
		}
	}
	s.Close()
	if got := l.Truncate(total); got != total {
		t.Fatalf("Truncate(%d) after Close = %d, want %d", total, got, total)
	}
	if recs, err := l.Records(0, 0); err != nil || len(recs) != 0 {
		t.Fatalf("Records after full truncation = %v, %v; want empty", recs, err)
	}
}

// TestSubscribeBeyondHeadRejected: subscribing past head+1 would create a
// gap the subscriber can never fill, so it must be rejected.
func TestSubscribeBeyondHeadRejected(t *testing.T) {
	l := New(&fakeApplier{}, 0)
	if _, err := l.Subscribe(2, 1); err == nil {
		t.Fatal("Subscribe beyond head+1 succeeded")
	}
	if s, err := l.Subscribe(1, 1); err != nil {
		t.Fatalf("Subscribe at head+1: %v", err)
	} else {
		s.Close()
	}
}

// TestRecordCodecRoundTrip round-trips randomized records through the
// binary codec, including back-to-back streaming of mixed op kinds.
func TestRecordCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var buf []byte
	var want []Record
	for i := 0; i < 200; i++ {
		r := Record{
			Seq: rng.Uint64(),
			Op:  Op(1 + rng.Intn(3)),
			ID:  rng.Intn(1 << 30),
		}
		if r.Op != OpDelete {
			r.Loc = model.Location{Partition: model.PartitionID(rng.Intn(1 << 20))}
			r.Loc.Point.X = rng.NormFloat64() * 1e3
			r.Loc.Point.Y = rng.NormFloat64() * 1e3
			r.Loc.Point.Floor = rng.Intn(50) - 10
		}
		buf = AppendRecord(buf, &r)
		want = append(want, r)
	}
	for i := 0; len(buf) > 0; i++ {
		r, n, err := DecodeRecord(buf)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if r != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, r, want[i])
		}
		buf = buf[n:]
	}
}

// TestDecodeRecordTypedErrors feeds malformed inputs and checks each yields
// its typed error.
func TestDecodeRecordTypedErrors(t *testing.T) {
	valid := AppendRecord(nil, &Record{Seq: 1, Op: OpMove, ID: 3, Loc: loc(2)})
	cases := []struct {
		name string
		buf  []byte
		want error
	}{
		{"empty", nil, ErrShortRecord},
		{"truncated header", valid[:10], ErrShortRecord},
		{"truncated location", valid[:20], ErrShortRecord},
		{"unknown op", append([]byte{99}, valid[1:]...), ErrUnknownOp},
		{"zero op", append([]byte{0}, valid[1:]...), ErrUnknownOp},
		{"negative id", func() []byte {
			b := append([]byte(nil), valid...)
			for i := 9; i < 17; i++ {
				b[i] = 0xff
			}
			return b
		}(), ErrCorruptRecord},
		{"negative partition", func() []byte {
			b := append([]byte(nil), valid...)
			for i := 17; i < 25; i++ {
				b[i] = 0xff
			}
			return b
		}(), ErrCorruptRecord},
		{"NaN coordinate", func() []byte {
			b := append([]byte(nil), valid...)
			b[29], b[30] = 0x7f, 0xf8 // quiet NaN bits in the X field
			return b
		}(), ErrCorruptRecord},
	}
	for _, tc := range cases {
		if _, _, err := DecodeRecord(tc.buf); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestOpString pins the Stringer output used in logs and errors.
func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{OpInsert: "insert", OpDelete: "delete", OpMove: "move", Op(9): "op(9)"} {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
}

// FuzzDecodeRecord fuzzes the wire decoder: any input must yield either a
// successful decode that re-encodes to the same bytes, or a typed error —
// never a panic, never an untyped error.
func FuzzDecodeRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendRecord(nil, &Record{Seq: 1, Op: OpInsert, ID: 0, Loc: loc(3)}))
	f.Add(AppendRecord(nil, &Record{Seq: 2, Op: OpDelete, ID: 5}))
	f.Add(AppendRecord(nil, &Record{Seq: 3, Op: OpMove, ID: 5, Loc: loc(1)}))
	f.Add([]byte{255, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, n, err := DecodeRecord(data)
		if err != nil {
			if !errors.Is(err, ErrShortRecord) && !errors.Is(err, ErrUnknownOp) && !errors.Is(err, ErrCorruptRecord) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(data))
		}
		re := AppendRecord(nil, &r)
		if len(re) != n {
			t.Fatalf("re-encode produced %d bytes, decode consumed %d", len(re), n)
		}
		for i := range re {
			if re[i] != data[i] {
				t.Fatalf("re-encode differs at byte %d", i)
			}
		}
	})
}
