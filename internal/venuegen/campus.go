package venuegen

import (
	"fmt"
	"math/rand"

	"viptree/internal/model"
)

// CampusConfig parameterises a multi-building campus (Clayton-like).
// Buildings are placed on a grid and their ground-floor entrances are linked
// by outdoor edges whose weights are the planar distances between the
// entrance doors, following the paper's construction of the Clayton data set
// ("the D2D graph also contains edges between the entry/exit doors of
// different buildings where the weight corresponds to the outdoor distance").
type CampusConfig struct {
	// Name of the venue.
	Name string
	// Buildings is the number of buildings on the campus.
	Buildings int
	// Building is the template configuration of each building. Seed, Floors
	// and RoomsPerHallway are jittered per building when Jitter is true so
	// buildings are not identical.
	Building BuildingConfig
	// Jitter varies building sizes around the template.
	Jitter bool
	// GridColumns is the number of buildings per campus row; building
	// spacing follows from the building footprint.
	GridColumns int
	// Seed drives the deterministic pseudo-random choices.
	Seed int64
}

func (c *CampusConfig) applyDefaults() {
	if c.Buildings <= 0 {
		c.Buildings = 4
	}
	if c.GridColumns <= 0 {
		c.GridColumns = 8
	}
	c.Building.applyDefaults()
}

// Campus generates a multi-building campus venue according to cfg.
func Campus(cfg CampusConfig) (*model.Venue, error) {
	cfg.applyDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := model.NewBuilder(cfg.Name)

	type placedBuilding struct {
		entrances []model.DoorID
		row, col  int
	}
	var placed []placedBuilding

	for i := 0; i < cfg.Buildings; i++ {
		bc := cfg.Building
		bc.Name = fmt.Sprintf("%s/B%02d", cfg.Name, i)
		bc.Seed = cfg.Seed + int64(i)
		if cfg.Jitter {
			// Vary floors and rooms by up to ±30%.
			bc.Floors = jitterInt(rng, bc.Floors, 0.3)
			bc.RoomsPerHallway = jitterInt(rng, bc.RoomsPerHallway, 0.3)
		}
		g := newBuildingGeometry(&bc)
		row := i / cfg.GridColumns
		col := i % cfg.GridColumns
		spacingX := g.floorWidth + 40
		spacingY := float64(bc.HallwaysPerFloor)*g.hallwayPitch + 40
		offsetX := float64(col) * spacingX
		offsetY := float64(row) * spacingY
		entrances, err := emitBuildingEntrances(b, &bc, g, rng, offsetX, offsetY)
		if err != nil {
			return nil, err
		}
		placed = append(placed, placedBuilding{entrances: entrances, row: row, col: col})
	}

	// Link each building to its left and upper neighbour on the grid with
	// outdoor edges between their first entrance doors, producing a
	// connected campus without a quadratic number of outdoor paths.
	doorsOf := func(pb placedBuilding) model.DoorID { return pb.entrances[0] }
	byPos := make(map[[2]int]int)
	for i, pb := range placed {
		byPos[[2]int{pb.row, pb.col}] = i
	}
	outdoor := func(a, b2 model.DoorID) float64 {
		// Use a pseudo walking distance: 40m between adjacent buildings
		// with a little noise, which is the grid spacing margin above.
		return 40 + rng.Float64()*20
	}
	for i, pb := range placed {
		if j, ok := byPos[[2]int{pb.row, pb.col - 1}]; ok {
			b.AddOutdoorEdge(doorsOf(placed[i]), doorsOf(placed[j]), outdoor(doorsOf(placed[i]), doorsOf(placed[j])))
		}
		if j, ok := byPos[[2]int{pb.row - 1, pb.col}]; ok {
			b.AddOutdoorEdge(doorsOf(placed[i]), doorsOf(placed[j]), outdoor(doorsOf(placed[i]), doorsOf(placed[j])))
		}
	}
	return b.Build()
}

// MustCampus is Campus but panics on error.
func MustCampus(cfg CampusConfig) *model.Venue {
	v, err := Campus(cfg)
	if err != nil {
		panic(err)
	}
	return v
}

func jitterInt(rng *rand.Rand, v int, frac float64) int {
	if v <= 1 {
		return v
	}
	delta := int(float64(v) * frac)
	if delta == 0 {
		return v
	}
	out := v - delta + rng.Intn(2*delta+1)
	if out < 1 {
		out = 1
	}
	return out
}
