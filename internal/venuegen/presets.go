package venuegen

import (
	"viptree/internal/geom"
	"viptree/internal/model"
)

// Scale selects how large the preset venues are. The paper's full-size data
// sets (Table 2) reach 83,000 doors and 13.4 million D2D edges; building the
// full Clayton campus takes noticeable time and memory, so benchmarks default
// to a reduced scale while cmd/experiments exposes the full one.
type Scale int

// Scales supported by the presets.
const (
	// ScaleTiny is for unit tests: venues with tens of rooms.
	ScaleTiny Scale = iota
	// ScaleSmall keeps benchmark venues in the hundreds-of-rooms range.
	ScaleSmall
	// ScaleFull matches the paper's Table 2 statistics.
	ScaleFull
)

// MelbourneCentral returns a shopping-centre-like venue (data set "MC"):
// few levels, wide atrium hallways with many shops attached. At ScaleFull it
// targets ~297 rooms, ~299 doors over 7 levels with ~8,500 D2D edges.
func MelbourneCentral(s Scale) *model.Venue {
	cfg := BuildingConfig{
		Name:               "MC",
		Floors:             7,
		HallwaysPerFloor:   1,
		RoomsPerHallway:    42,
		DoubleDoorFraction: 0,
		Staircases:         1,
		Lifts:              1,
		Entrances:          2,
		RoomWidth:          8,
		RoomDepth:          10,
		HallwayWidth:       6,
		Seed:               101,
	}
	switch s {
	case ScaleTiny:
		cfg.Floors, cfg.RoomsPerHallway = 2, 8
	case ScaleSmall:
		cfg.Floors, cfg.RoomsPerHallway = 4, 20
	}
	return MustBuilding(cfg)
}

// Menzies returns an office-building-like venue (data set "Men"): 14 levels
// of offices along long hallways. At ScaleFull it targets ~1,306 rooms,
// ~1,368 doors and ~56,000 D2D edges.
func Menzies(s Scale) *model.Venue {
	cfg := BuildingConfig{
		Name:               "Men",
		Floors:             14,
		HallwaysPerFloor:   1,
		RoomsPerHallway:    93,
		DoubleDoorFraction: 0.02,
		Staircases:         2,
		Lifts:              2,
		Entrances:          2,
		RoomWidth:          4,
		RoomDepth:          6,
		HallwayWidth:       3,
		Seed:               202,
	}
	switch s {
	case ScaleTiny:
		cfg.Floors, cfg.RoomsPerHallway, cfg.Staircases, cfg.Lifts = 3, 10, 1, 0
	case ScaleSmall:
		cfg.Floors, cfg.RoomsPerHallway = 6, 40
	}
	return MustBuilding(cfg)
}

// Clayton returns a campus-like venue (data set "CL"): many buildings with
// very large hallway fan-out, connected by outdoor paths. At ScaleFull it
// targets ~41,000 rooms, ~41,000 doors and several million D2D edges with a
// maximum out-degree in the hundreds.
func Clayton(s Scale) *model.Venue {
	cfg := CampusConfig{
		Name:      "CL",
		Buildings: 71,
		Building: BuildingConfig{
			Floors:             2,
			HallwaysPerFloor:   1,
			RoomsPerHallway:    290,
			DoubleDoorFraction: 0.01,
			Staircases:         2,
			Lifts:              1,
			Entrances:          2,
			RoomWidth:          4,
			RoomDepth:          6,
			HallwayWidth:       4,
		},
		Jitter:      true,
		GridColumns: 9,
		Seed:        303,
	}
	switch s {
	case ScaleTiny:
		cfg.Buildings = 3
		cfg.Building.RoomsPerHallway = 12
		cfg.Building.Staircases = 1
		cfg.Building.Lifts = 0
	case ScaleSmall:
		cfg.Buildings = 8
		cfg.Building.RoomsPerHallway = 60
	}
	return MustCampus(cfg)
}

// PaperExample returns a small hand-crafted venue in the spirit of Fig. 1 of
// the paper: 17 partitions (four hallways with rooms attached) and ~20 doors
// on a single floor. It is used in unit tests, documentation and the
// quickstart example.
func PaperExample() *model.Venue {
	b := model.NewBuilder("paper-example")
	// Four hallway clusters arranged left to right, connected in a chain.
	//
	//	[P1 cluster] -- [P5 cluster] -- [P12 cluster] -- [P17 cluster]
	//
	// Cluster 1: hallway P1 with rooms P2, P3, P4.
	h1 := b.AddPartition("P1", model.ClassHallway, geom.NewRect(0, 10, 30, 14, 0), 0)
	p2 := b.AddPartition("P2", model.ClassRoom, geom.NewRect(0, 14, 10, 20, 0), 0)
	p3 := b.AddPartition("P3", model.ClassRoom, geom.NewRect(10, 14, 20, 20, 0), 0)
	p4 := b.AddPartition("P4", model.ClassRoom, geom.NewRect(20, 14, 30, 20, 0), 0)
	b.AddDoor("d1", geom.Point{X: 0, Y: 12, Floor: 0}, h1, model.NoPartition) // exterior exit
	b.AddDoor("d2", geom.Point{X: 5, Y: 14, Floor: 0}, p2, h1)
	b.AddDoor("d3", geom.Point{X: 12, Y: 14, Floor: 0}, p3, h1)
	b.AddDoor("d4", geom.Point{X: 18, Y: 14, Floor: 0}, p3, h1) // P3 has two doors to the hallway
	b.AddDoor("d5", geom.Point{X: 25, Y: 14, Floor: 0}, p4, h1)

	// Cluster 2: hallway P5 with rooms P6, P7.
	h5 := b.AddPartition("P5", model.ClassHallway, geom.NewRect(30, 10, 55, 14, 0), 0)
	p6 := b.AddPartition("P6", model.ClassRoom, geom.NewRect(30, 14, 42, 20, 0), 0)
	p7 := b.AddPartition("P7", model.ClassRoom, geom.NewRect(42, 14, 55, 20, 0), 0)
	b.AddDoor("d6", geom.Point{X: 30, Y: 12, Floor: 0}, h1, h5) // connects the two hallways
	b.AddDoor("d7", geom.Point{X: 36, Y: 14, Floor: 0}, p6, h5)
	b.AddDoor("d8", geom.Point{X: 48, Y: 14, Floor: 0}, p7, h5)
	b.AddDoor("d9", geom.Point{X: 41, Y: 10, Floor: 0}, p6, h5) // second door for P6
	b.AddDoor("d10", geom.Point{X: 42, Y: 14, Floor: 0}, p6, p7)

	// Cluster 3: hallway P12 with rooms P8..P11.
	h12 := b.AddPartition("P12", model.ClassHallway, geom.NewRect(55, 10, 85, 14, 0), 0)
	p8 := b.AddPartition("P8", model.ClassRoom, geom.NewRect(55, 14, 65, 20, 0), 0)
	p9 := b.AddPartition("P9", model.ClassRoom, geom.NewRect(65, 14, 75, 20, 0), 0)
	p10 := b.AddPartition("P10", model.ClassRoom, geom.NewRect(75, 14, 85, 20, 0), 0)
	p11 := b.AddPartition("P11", model.ClassRoom, geom.NewRect(55, 4, 70, 10, 0), 0)
	b.AddDoor("d11", geom.Point{X: 55, Y: 12, Floor: 0}, h5, h12) // connects clusters 2 and 3
	b.AddDoor("d12", geom.Point{X: 60, Y: 14, Floor: 0}, p8, h12)
	b.AddDoor("d13", geom.Point{X: 70, Y: 14, Floor: 0}, p9, h12)
	b.AddDoor("d14", geom.Point{X: 80, Y: 14, Floor: 0}, p10, h12)
	b.AddDoor("d15", geom.Point{X: 62, Y: 10, Floor: 0}, p11, h12)

	// Cluster 4: hallway P17 with rooms P13..P16.
	h17 := b.AddPartition("P17", model.ClassHallway, geom.NewRect(85, 10, 115, 14, 0), 0)
	p13 := b.AddPartition("P13", model.ClassRoom, geom.NewRect(85, 14, 95, 20, 0), 0)
	p14 := b.AddPartition("P14", model.ClassRoom, geom.NewRect(95, 14, 105, 20, 0), 0)
	p15 := b.AddPartition("P15", model.ClassRoom, geom.NewRect(105, 14, 115, 20, 0), 0)
	p16 := b.AddPartition("P16", model.ClassRoom, geom.NewRect(85, 4, 100, 10, 0), 0)
	b.AddDoor("d16", geom.Point{X: 85, Y: 12, Floor: 0}, h12, h17) // connects clusters 3 and 4
	b.AddDoor("d17", geom.Point{X: 90, Y: 14, Floor: 0}, p13, h17)
	b.AddDoor("d18", geom.Point{X: 100, Y: 14, Floor: 0}, p14, h17)
	b.AddDoor("d19", geom.Point{X: 110, Y: 14, Floor: 0}, p15, h17)
	b.AddDoor("d20", geom.Point{X: 92, Y: 10, Floor: 0}, p16, h17)

	return b.MustBuild()
}
