package venuegen

import (
	"fmt"

	"viptree/internal/geom"
	"viptree/internal/model"
)

// Replicate returns a venue consisting of `copies` vertically stacked copies
// of v, with consecutive copies connected by staircases, following the
// paper's construction of the MC-2, Men-2 and CL-2 data sets ("a replica of
// Melbourne Central is placed on top of the original building... the replicas
// are connected with the original buildings by stairs").
//
// stairCost is the traversal cost of each connecting staircase; a
// non-positive value uses 8 metres.
func Replicate(v *model.Venue, copies int, stairCost float64) (*model.Venue, error) {
	if copies < 1 {
		return nil, fmt.Errorf("venuegen: copies must be >= 1, got %d", copies)
	}
	if stairCost <= 0 {
		stairCost = 8
	}
	minFloor, maxFloor := floorRange(v)
	floorSpan := maxFloor - minFloor + 1

	b := model.NewBuilder(fmt.Sprintf("%s-x%d", v.Name, copies))
	b.SetHallwayThreshold(v.HallwayThreshold)

	// partitionOf[c][p] is the partition ID of partition p in copy c.
	partitionOf := make([][]model.PartitionID, copies)
	doorOf := make([][]model.DoorID, copies)

	for c := 0; c < copies; c++ {
		df := c * floorSpan
		partitionOf[c] = make([]model.PartitionID, v.NumPartitions())
		doorOf[c] = make([]model.DoorID, v.NumDoors())
		for i := range v.Partitions {
			p := &v.Partitions[i]
			rect := p.Bounds.Translate(0, 0, df)
			partitionOf[c][i] = b.AddPartition(fmt.Sprintf("c%d/%s", c, p.Name), p.Class, rect, p.TraversalCost)
		}
		for i := range v.Doors {
			d := &v.Doors[i]
			loc := d.Loc
			loc.Floor += df
			p1 := partitionOf[c][d.Partitions[0]]
			p2 := model.NoPartition
			if len(d.Partitions) == 2 {
				p2 = partitionOf[c][d.Partitions[1]]
			}
			doorOf[c][i] = b.AddDoor(fmt.Sprintf("c%d/%s", c, d.Name), loc, p1, p2)
		}
		for _, e := range v.OutdoorEdges {
			b.AddOutdoorEdge(doorOf[c][e.From], doorOf[c][e.To], e.Weight)
		}
	}

	// Connect copy c to copy c+1: a staircase between a top-floor hallway of
	// copy c and the corresponding bottom-floor hallway of copy c+1. Every
	// hallway on the venue's top floor gets a connecting staircase so that
	// campuses (many buildings) remain connected building-by-building.
	topHallways := hallwaysOnFloor(v, maxFloor)
	bottomHallways := hallwaysOnFloor(v, minFloor)
	if len(topHallways) == 0 {
		topHallways = partitionsOnFloor(v, maxFloor)
	}
	if len(bottomHallways) == 0 {
		bottomHallways = partitionsOnFloor(v, minFloor)
	}
	for c := 0; c+1 < copies; c++ {
		n := len(topHallways)
		if len(bottomHallways) < n {
			n = len(bottomHallways)
		}
		for k := 0; k < n; k++ {
			top := v.Partition(topHallways[k])
			topCopy := partitionOf[c][topHallways[k]]
			bottomCopy := partitionOf[c+1][bottomHallways[k]]
			center := top.Bounds.Center()
			stairRect := geom.NewRect(center.X-1, center.Y-1, center.X+1, center.Y+1, maxFloor+c*floorSpan)
			st := b.AddPartition(fmt.Sprintf("link-stair/c%d-%d/%d", c, c+1, k), model.ClassStaircase, stairRect, stairCost)
			b.AddDoor(fmt.Sprintf("link-stair/c%d/%d/lower", c, k), geom.Point{X: center.X, Y: center.Y, Floor: maxFloor + c*floorSpan}, topCopy, st)
			b.AddDoor(fmt.Sprintf("link-stair/c%d/%d/upper", c+1, k), geom.Point{X: center.X, Y: center.Y, Floor: minFloor + (c+1)*floorSpan}, bottomCopy, st)
		}
	}
	return b.Build()
}

// MustReplicate is Replicate but panics on error.
func MustReplicate(v *model.Venue, copies int, stairCost float64) *model.Venue {
	out, err := Replicate(v, copies, stairCost)
	if err != nil {
		panic(err)
	}
	return out
}

func floorRange(v *model.Venue) (minFloor, maxFloor int) {
	minFloor, maxFloor = v.Partitions[0].Bounds.Floor, v.Partitions[0].Bounds.Floor
	for i := range v.Partitions {
		f := v.Partitions[i].Bounds.Floor
		if f < minFloor {
			minFloor = f
		}
		if f > maxFloor {
			maxFloor = f
		}
	}
	return minFloor, maxFloor
}

func hallwaysOnFloor(v *model.Venue, floor int) []model.PartitionID {
	var out []model.PartitionID
	for i := range v.Partitions {
		p := &v.Partitions[i]
		if p.Bounds.Floor == floor && p.Class == model.ClassHallway {
			out = append(out, p.ID)
		}
	}
	return out
}

func partitionsOnFloor(v *model.Venue, floor int) []model.PartitionID {
	var out []model.PartitionID
	for i := range v.Partitions {
		if v.Partitions[i].Bounds.Floor == floor {
			out = append(out, v.Partitions[i].ID)
		}
	}
	return out
}
