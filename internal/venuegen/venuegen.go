// Package venuegen generates synthetic indoor venues with the statistical
// shape of the data sets used in the paper's evaluation (Section 4.1,
// Table 2): Melbourne Central (a shopping centre), the Menzies building (a
// tall office building) and the Clayton campus (71 buildings connected by
// outdoor paths), plus the replicated variants MC-2, Men-2 and CL-2.
//
// The paper's venues were digitised manually from floor plans that are not
// publicly available; this package substitutes parametric generators that
// reproduce the published statistics — room, door and D2D-edge counts, floor
// counts, and hallway fan-out (out-degree up to ~400) — which are the
// quantities the indexing and query algorithms actually depend on.
package venuegen

import (
	"fmt"
	"math/rand"

	"viptree/internal/geom"
	"viptree/internal/model"
)

// BuildingConfig parameterises a single synthetic building.
type BuildingConfig struct {
	// Name of the venue.
	Name string
	// Floors is the number of floors (>= 1).
	Floors int
	// HallwaysPerFloor is the number of parallel hallways on each floor.
	HallwaysPerFloor int
	// RoomsPerHallway is the number of rooms attached to each hallway
	// (split between its two sides).
	RoomsPerHallway int
	// DoubleDoorFraction is the fraction of rooms that get a second door to
	// an adjacent room, producing general partitions with two doors.
	DoubleDoorFraction float64
	// Staircases is the number of staircases connecting each pair of
	// consecutive floors.
	Staircases int
	// Lifts is the number of lift shafts; a lift spanning n floors becomes
	// n-1 partitions, one per consecutive floor pair (Section 2).
	Lifts int
	// Entrances is the number of exterior doors on the ground floor.
	Entrances int
	// RoomWidth and RoomDepth are the planar dimensions of a room in
	// metres; HallwayWidth is the width of a hallway.
	RoomWidth, RoomDepth, HallwayWidth float64
	// StairCost and LiftCost are the traversal costs of a staircase and a
	// lift partition (the indoor distance charged for moving one floor).
	StairCost, LiftCost float64
	// Seed drives the deterministic pseudo-random choices (second doors).
	Seed int64
}

func (c *BuildingConfig) applyDefaults() {
	if c.Floors <= 0 {
		c.Floors = 1
	}
	if c.HallwaysPerFloor <= 0 {
		c.HallwaysPerFloor = 1
	}
	if c.RoomsPerHallway <= 0 {
		c.RoomsPerHallway = 10
	}
	if c.Staircases <= 0 && c.Floors > 1 {
		c.Staircases = 1
	}
	if c.Entrances <= 0 {
		c.Entrances = 1
	}
	if c.RoomWidth <= 0 {
		c.RoomWidth = 5
	}
	if c.RoomDepth <= 0 {
		c.RoomDepth = 6
	}
	if c.HallwayWidth <= 0 {
		c.HallwayWidth = 3
	}
	if c.StairCost <= 0 {
		c.StairCost = 8
	}
	if c.LiftCost <= 0 {
		c.LiftCost = 5
	}
}

// Building generates a single multi-floor building according to cfg.
func Building(cfg BuildingConfig) (*model.Venue, error) {
	cfg.applyDefaults()
	b := model.NewBuilder(cfg.Name)
	g := newBuildingGeometry(&cfg)
	rng := rand.New(rand.NewSource(cfg.Seed))
	if err := emitBuilding(b, &cfg, g, rng, 0, 0); err != nil {
		return nil, err
	}
	return b.Build()
}

// MustBuilding is Building but panics on error; used by presets and tests.
func MustBuilding(cfg BuildingConfig) *model.Venue {
	v, err := Building(cfg)
	if err != nil {
		panic(err)
	}
	return v
}

// buildingGeometry precomputes the planar layout shared by all floors.
type buildingGeometry struct {
	roomsPerSide int
	floorWidth   float64
	hallwayPitch float64 // vertical distance between hallway bands
}

func newBuildingGeometry(cfg *BuildingConfig) *buildingGeometry {
	roomsPerSide := (cfg.RoomsPerHallway + 1) / 2
	return &buildingGeometry{
		roomsPerSide: roomsPerSide,
		floorWidth:   float64(roomsPerSide) * cfg.RoomWidth,
		hallwayPitch: cfg.HallwayWidth + 2*cfg.RoomDepth,
	}
}

// emitBuilding adds one building to the builder with the given planar offset
// (offsetX, offsetY). It returns the entrance doors created on the ground
// floor so campus generation can link buildings with outdoor edges.
func emitBuilding(b *model.Builder, cfg *BuildingConfig, g *buildingGeometry, rng *rand.Rand, offsetX, offsetY float64) error {
	_, err := emitBuildingEntrances(b, cfg, g, rng, offsetX, offsetY)
	return err
}

// emitBuildingEntrances is emitBuilding returning the entrance door IDs.
func emitBuildingEntrances(b *model.Builder, cfg *BuildingConfig, g *buildingGeometry, rng *rand.Rand, offsetX, offsetY float64) ([]model.DoorID, error) {
	// hallways[floor][h] is the partition ID of hallway h on that floor.
	hallways := make([][]model.PartitionID, cfg.Floors)
	var entrances []model.DoorID

	for floor := 0; floor < cfg.Floors; floor++ {
		hallways[floor] = make([]model.PartitionID, cfg.HallwaysPerFloor)
		for h := 0; h < cfg.HallwaysPerFloor; h++ {
			yBase := offsetY + float64(h)*g.hallwayPitch
			hallRect := geom.NewRect(offsetX, yBase+cfg.RoomDepth, offsetX+g.floorWidth, yBase+cfg.RoomDepth+cfg.HallwayWidth, floor)
			hall := b.AddPartition(fmt.Sprintf("%s/F%d/H%d", cfg.Name, floor, h), model.ClassHallway, hallRect, 0)
			hallways[floor][h] = hall

			// Rooms below (side 0) and above (side 1) the hallway.
			var prevRoom [2]model.PartitionID
			prevRoom[0], prevRoom[1] = model.NoPartition, model.NoPartition
			roomCount := 0
			for side := 0; side < 2 && roomCount < cfg.RoomsPerHallway; side++ {
				for i := 0; i < g.roomsPerSide && roomCount < cfg.RoomsPerHallway; i++ {
					x0 := offsetX + float64(i)*cfg.RoomWidth
					var rect geom.Rect
					var doorY float64
					if side == 0 {
						rect = geom.NewRect(x0, yBase, x0+cfg.RoomWidth, yBase+cfg.RoomDepth, floor)
						doorY = yBase + cfg.RoomDepth
					} else {
						rect = geom.NewRect(x0, yBase+cfg.RoomDepth+cfg.HallwayWidth, x0+cfg.RoomWidth, yBase+2*cfg.RoomDepth+cfg.HallwayWidth, floor)
						doorY = yBase + cfg.RoomDepth + cfg.HallwayWidth
					}
					room := b.AddPartition(fmt.Sprintf("%s/F%d/H%d/R%d", cfg.Name, floor, h, roomCount), model.ClassRoom, rect, 0)
					doorLoc := geom.Point{X: x0 + cfg.RoomWidth/2, Y: doorY, Floor: floor}
					b.AddDoor(fmt.Sprintf("%s/F%d/H%d/R%d/door", cfg.Name, floor, h, roomCount), doorLoc, room, hall)
					// Optionally connect to the previous room on the same
					// side, creating a two-door general partition.
					if prevRoom[side] != model.NoPartition && rng.Float64() < cfg.DoubleDoorFraction {
						midY := (rect.MinY + rect.MaxY) / 2
						interLoc := geom.Point{X: x0, Y: midY, Floor: floor}
						b.AddDoor(fmt.Sprintf("%s/F%d/H%d/R%d/side", cfg.Name, floor, h, roomCount), interLoc, prevRoom[side], room)
					}
					prevRoom[side] = room
					roomCount++
				}
			}

			// Connect this hallway to the previous hallway on the same
			// floor through a connecting door at the left end.
			if h > 0 {
				connLoc := geom.Point{X: offsetX + 1, Y: yBase + cfg.RoomDepth, Floor: floor}
				b.AddDoor(fmt.Sprintf("%s/F%d/H%d/link", cfg.Name, floor, h), connLoc, hallways[floor][h-1], hall)
			}
		}
	}

	// Vertical connections: staircases and lifts attach to hallway 0 of
	// each pair of consecutive floors, spread along the x axis.
	for floor := 0; floor+1 < cfg.Floors; floor++ {
		lower := hallways[floor][0]
		upper := hallways[floor+1][0]
		for s := 0; s < cfg.Staircases; s++ {
			x := offsetX + g.floorWidth*float64(s+1)/float64(cfg.Staircases+1)
			rect := geom.NewRect(x-1, offsetY+cfg.RoomDepth, x+1, offsetY+cfg.RoomDepth+cfg.HallwayWidth, floor)
			st := b.AddPartition(fmt.Sprintf("%s/stair%d/F%d-%d", cfg.Name, s, floor, floor+1), model.ClassStaircase, rect, cfg.StairCost)
			b.AddDoor(fmt.Sprintf("%s/stair%d/F%d/lower", cfg.Name, s, floor), geom.Point{X: x, Y: offsetY + cfg.RoomDepth, Floor: floor}, lower, st)
			b.AddDoor(fmt.Sprintf("%s/stair%d/F%d/upper", cfg.Name, s, floor+1), geom.Point{X: x, Y: offsetY + cfg.RoomDepth, Floor: floor + 1}, upper, st)
		}
		for l := 0; l < cfg.Lifts; l++ {
			x := offsetX + g.floorWidth*float64(l+1)/float64(cfg.Lifts+2)
			rect := geom.NewRect(x-1, offsetY+cfg.RoomDepth+cfg.HallwayWidth, x+1, offsetY+cfg.RoomDepth+cfg.HallwayWidth+2, floor)
			lift := b.AddPartition(fmt.Sprintf("%s/lift%d/F%d-%d", cfg.Name, l, floor, floor+1), model.ClassLift, rect, cfg.LiftCost)
			b.AddDoor(fmt.Sprintf("%s/lift%d/F%d/lower", cfg.Name, l, floor), geom.Point{X: x, Y: offsetY + cfg.RoomDepth + cfg.HallwayWidth, Floor: floor}, lower, lift)
			b.AddDoor(fmt.Sprintf("%s/lift%d/F%d/upper", cfg.Name, l, floor+1), geom.Point{X: x, Y: offsetY + cfg.RoomDepth + cfg.HallwayWidth, Floor: floor + 1}, upper, lift)
		}
	}

	// Exterior entrances on the ground floor, attached to hallway 0.
	for e := 0; e < cfg.Entrances; e++ {
		x := offsetX + g.floorWidth*float64(e+1)/float64(cfg.Entrances+1)
		loc := geom.Point{X: x, Y: offsetY + cfg.RoomDepth, Floor: 0}
		did := b.AddDoor(fmt.Sprintf("%s/entrance%d", cfg.Name, e), loc, hallways[0][0], model.NoPartition)
		entrances = append(entrances, did)
	}
	return entrances, nil
}
