package venuegen

import (
	"math/rand"
	"testing"

	"viptree/internal/model"
)

func TestBuildingDefaults(t *testing.T) {
	v, err := Building(BuildingConfig{Name: "defaults"})
	if err != nil {
		t.Fatalf("Building: %v", err)
	}
	if v.NumPartitions() == 0 || v.NumDoors() == 0 {
		t.Fatal("default building is empty")
	}
	if !v.D2D().Graph.Connected() {
		t.Error("default building D2D graph must be connected")
	}
}

func TestBuildingShape(t *testing.T) {
	cfg := BuildingConfig{
		Name:             "shape",
		Floors:           3,
		HallwaysPerFloor: 2,
		RoomsPerHallway:  10,
		Staircases:       2,
		Lifts:            1,
		Entrances:        2,
		Seed:             1,
	}
	v := MustBuilding(cfg)
	s := v.ComputeStats()
	// Partitions: 3 floors * (2 hallways + 20 rooms) + vertical:
	// 2 floor-gaps * (2 stairs + 1 lift) = 66 + 6 = 72.
	if s.Partitions != 72 {
		t.Errorf("partitions = %d, want 72", s.Partitions)
	}
	if s.Floors != 3 {
		t.Errorf("floors = %d, want 3", s.Floors)
	}
	if s.Hallways < 6 {
		t.Errorf("hallways = %d, want >= 6", s.Hallways)
	}
	if s.StairOrLifts != 6 {
		t.Errorf("stairs+lifts = %d, want 6", s.StairOrLifts)
	}
	if !v.D2D().Graph.Connected() {
		t.Error("building D2D graph must be connected")
	}
}

func TestBuildingDoubleDoors(t *testing.T) {
	with := MustBuilding(BuildingConfig{Name: "dd", Floors: 1, RoomsPerHallway: 40, DoubleDoorFraction: 1, Seed: 5})
	without := MustBuilding(BuildingConfig{Name: "nd", Floors: 1, RoomsPerHallway: 40, DoubleDoorFraction: 0, Seed: 5})
	if with.NumDoors() <= without.NumDoors() {
		t.Errorf("DoubleDoorFraction=1 should add doors: %d vs %d", with.NumDoors(), without.NumDoors())
	}
	// With double doors some rooms become general partitions.
	s := with.ComputeStats()
	if s.General == 0 {
		t.Error("expected some general partitions with double doors")
	}
}

func TestCampusConnectivityAndShape(t *testing.T) {
	v := MustCampus(CampusConfig{
		Name:      "campus",
		Buildings: 6,
		Building: BuildingConfig{
			Floors:          2,
			RoomsPerHallway: 8,
			Staircases:      1,
		},
		GridColumns: 3,
		Seed:        9,
	})
	if !v.D2D().Graph.Connected() {
		t.Fatal("campus D2D graph must be connected")
	}
	if len(v.OutdoorEdges) == 0 {
		t.Error("campus should have outdoor edges between buildings")
	}
	s := v.ComputeStats()
	if s.Floors != 2 {
		t.Errorf("floors = %d, want 2", s.Floors)
	}
	if s.Partitions < 6*(2+16) {
		t.Errorf("partitions = %d, want at least %d", s.Partitions, 6*(2+16))
	}
}

func TestCampusJitterDeterministic(t *testing.T) {
	cfg := CampusConfig{
		Name:      "jit",
		Buildings: 4,
		Building:  BuildingConfig{Floors: 3, RoomsPerHallway: 10},
		Jitter:    true,
		Seed:      77,
	}
	a := MustCampus(cfg)
	b := MustCampus(cfg)
	if a.NumDoors() != b.NumDoors() || a.NumPartitions() != b.NumPartitions() {
		t.Error("campus generation with the same seed should be deterministic")
	}
}

func TestReplicate(t *testing.T) {
	base := MustBuilding(BuildingConfig{Name: "base", Floors: 2, RoomsPerHallway: 6, Staircases: 1, Seed: 3})
	rep, err := Replicate(base, 2, 0)
	if err != nil {
		t.Fatalf("Replicate: %v", err)
	}
	if !rep.D2D().Graph.Connected() {
		t.Fatal("replicated venue must be connected")
	}
	// Two copies plus at least one connecting staircase partition.
	wantMin := 2 * base.NumPartitions()
	if rep.NumPartitions() <= wantMin {
		t.Errorf("replicated partitions = %d, want > %d", rep.NumPartitions(), wantMin)
	}
	if rep.Floors() != 2*base.Floors() {
		t.Errorf("replicated floors = %d, want %d", rep.Floors(), 2*base.Floors())
	}
	if rep.NumDoors() < 2*base.NumDoors() {
		t.Errorf("replicated doors = %d, want >= %d", rep.NumDoors(), 2*base.NumDoors())
	}
	// Replicating once returns an equivalent venue (plus no staircases).
	one, err := Replicate(base, 1, 0)
	if err != nil {
		t.Fatalf("Replicate(1): %v", err)
	}
	if one.NumPartitions() != base.NumPartitions() || one.NumDoors() != base.NumDoors() {
		t.Error("Replicate with 1 copy should preserve size")
	}
	if _, err := Replicate(base, 0, 0); err == nil {
		t.Error("Replicate with 0 copies should fail")
	}
}

func TestReplicateCampusStaysConnected(t *testing.T) {
	campus := MustCampus(CampusConfig{
		Name:      "mini-campus",
		Buildings: 3,
		Building:  BuildingConfig{Floors: 1, RoomsPerHallway: 5},
		Seed:      11,
	})
	rep := MustReplicate(campus, 2, 0)
	if !rep.D2D().Graph.Connected() {
		t.Fatal("replicated campus must remain connected")
	}
}

func TestPresetsTinyAndSmall(t *testing.T) {
	presets := []struct {
		name string
		gen  func(Scale) *model.Venue
	}{
		{"MC", MelbourneCentral},
		{"Men", Menzies},
		{"CL", Clayton},
	}
	for _, p := range presets {
		for _, s := range []Scale{ScaleTiny, ScaleSmall} {
			v := p.gen(s)
			if !v.D2D().Graph.Connected() {
				t.Errorf("%s scale %d: disconnected", p.name, s)
			}
			if v.NumDoors() == 0 {
				t.Errorf("%s scale %d: empty", p.name, s)
			}
		}
		tiny := p.gen(ScaleTiny)
		small := p.gen(ScaleSmall)
		if small.NumDoors() <= tiny.NumDoors() {
			t.Errorf("%s: small (%d doors) should exceed tiny (%d doors)", p.name, small.NumDoors(), tiny.NumDoors())
		}
	}
}

func TestMenziesSmallHasHallwayFanout(t *testing.T) {
	v := Menzies(ScaleSmall)
	s := v.ComputeStats()
	// The defining property of indoor D2D graphs (Section 1.2.1): large
	// out-degree due to hallway partitions with many doors.
	if s.MaxOutDegree < 20 {
		t.Errorf("MaxOutDegree = %d, expected hallway fan-out >= 20", s.MaxOutDegree)
	}
	if s.Hallways == 0 {
		t.Error("expected hallway partitions")
	}
}

func TestPaperExample(t *testing.T) {
	v := PaperExample()
	if v.NumPartitions() != 17 {
		t.Errorf("partitions = %d, want 17", v.NumPartitions())
	}
	if v.NumDoors() != 20 {
		t.Errorf("doors = %d, want 20", v.NumDoors())
	}
	if !v.D2D().Graph.Connected() {
		t.Error("paper example must be connected")
	}
	s := v.ComputeStats()
	if s.Hallways != 4 {
		t.Errorf("hallways = %d, want 4", s.Hallways)
	}
	// Ground truth sanity: distance between random locations is finite and
	// symmetric.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		a := v.RandomLocation(rng)
		c := v.RandomLocation(rng)
		d1 := v.D2D().LocationDist(a, c)
		d2 := v.D2D().LocationDist(c, a)
		if d1 < 0 {
			t.Fatalf("negative distance %v", d1)
		}
		if diff := d1 - d2; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("asymmetric distance: %v vs %v", d1, d2)
		}
	}
}

func TestPresetFullStatsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale presets are slow")
	}
	// Only MC at full scale: it is small enough for a unit test and checks
	// that the preset tracks Table 2 of the paper.
	v := MelbourneCentral(ScaleFull)
	s := v.ComputeStats()
	if s.Partitions < 250 || s.Partitions > 400 {
		t.Errorf("MC rooms = %d, want ~297", s.Partitions)
	}
	if s.Floors != 7 {
		t.Errorf("MC floors = %d, want 7", s.Floors)
	}
	if s.D2DEdges < 5000 || s.D2DEdges > 15000 {
		t.Errorf("MC edges = %d, want ~8,500", s.D2DEdges)
	}
}
