package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"sort"
	"sync"
	"time"
)

// Fault errors injected by FaultFS. Exposed so tests can assert on them with
// errors.Is through whatever wrapping the WAL adds.
var (
	// ErrInjectedCrash reports a write issued at or after the configured
	// crash point: the machine "lost power" mid-write.
	ErrInjectedCrash = errors.New("walfault: injected crash")
	// ErrInjectedSyncFailure reports an fsync made to fail by FailSync.
	ErrInjectedSyncFailure = errors.New("walfault: injected fsync failure")
	// ErrInjectedWriteFailure reports a write made to fail by FailWrites or
	// ShortWriteOnce.
	ErrInjectedWriteFailure = errors.New("walfault: injected write failure")
)

// FaultFS is an in-memory FS with injectable faults, used by the WAL's
// crash-recovery and degraded-mode tests. It supports three failure modes:
//
//   - Crash points: CrashAfter(n) makes the n-th byte written from now on
//     the last one that reaches "disk" — the write that crosses the budget
//     is applied partially (modelling a torn write) and fails, and every
//     later write and fsync fails too. The surviving bytes stay readable,
//     so a recovery run over the same FaultFS sees exactly what a process
//     restarted after power loss would see. Revive clears the crashed
//     state while keeping the contents.
//
//   - Fsync failures: FailSync makes every Sync fail until ClearFaults,
//     modelling a dying disk. Writes still succeed, so the WAL's degraded
//     read-only mode and its automatic recovery probing can be driven
//     deterministically.
//
//   - Write failures: FailWrites fails every write (without the partial
//     application of a crash); ShortWriteOnce fails exactly one write
//     after applying only its first k bytes.
//
// FaultFS is safe for concurrent use.
type FaultFS struct {
	mu    sync.Mutex
	files map[string]*bytes.Buffer

	written     int64 // total bytes successfully applied
	crashBudget int64 // -1: no crash point armed
	crashed     bool

	syncErr  error
	writeErr error
	shortN   int64 // pending ShortWriteOnce byte count
	short    bool

	openDelay time.Duration // injected latency per Open (slow disk)
}

// NewFaultFS returns an empty fault-injecting in-memory filesystem with no
// faults armed.
func NewFaultFS() *FaultFS {
	return &FaultFS{files: make(map[string]*bytes.Buffer), crashBudget: -1}
}

// CrashAfter arms a crash point n bytes of writes from now. The write that
// crosses the budget is applied partially and fails; everything after fails.
func (f *FaultFS) CrashAfter(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashBudget = f.written + n
	f.crashed = false
}

// Crashed reports whether the armed crash point has been hit.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Revive clears a hit crash point (the process "restarted"): the surviving
// bytes remain, writes and syncs succeed again.
func (f *FaultFS) Revive() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashBudget = -1
	f.crashed = false
}

// FailSync makes every Sync fail until ClearFaults.
func (f *FaultFS) FailSync() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncErr = ErrInjectedSyncFailure
}

// FailWrites makes every write fail (applying nothing) until ClearFaults.
func (f *FaultFS) FailWrites() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeErr = ErrInjectedWriteFailure
}

// ShortWriteOnce makes the next write apply only its first k bytes and fail.
func (f *FaultFS) ShortWriteOnce(k int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.short, f.shortN = true, k
}

// ClearFaults clears sync and write failures and open delays (crash points
// are cleared by Revive).
func (f *FaultFS) ClearFaults() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncErr, f.writeErr, f.short = nil, nil, false
	f.openDelay = 0
}

// SlowOpen makes every Open sleep for d before returning, modelling a slow
// or contended disk on the snapshot read path. Zero restores full speed.
func (f *FaultFS) SlowOpen(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.openDelay = d
}

// BytesWritten returns the total bytes applied so far, which is how crash
// tests choose randomized crash offsets inside the written range.
func (f *FaultFS) BytesWritten() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.written
}

// Contents returns a copy of the named file's bytes (tests use it to mutate
// segments for corruption scenarios via WriteFile).
func (f *FaultFS) Contents(name string) ([]byte, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	buf, ok := f.files[name]
	if !ok {
		return nil, false
	}
	return bytes.Clone(buf.Bytes()), true
}

// WriteFile replaces the named file's bytes outside of fault accounting.
func (f *FaultFS) WriteFile(name string, data []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.files[name] = bytes.NewBuffer(bytes.Clone(data))
}

// MkdirAll implements FS (directories are implicit in the flat namespace).
func (f *FaultFS) MkdirAll(string) error { return nil }

// ReadDir implements FS: every file whose path starts with dir.
func (f *FaultFS) ReadDir(dir string) ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var names []string
	for name := range f.files {
		if d, base := splitPath(name); d == dir {
			names = append(names, base)
		}
	}
	sort.Strings(names)
	return names, nil
}

// splitPath separates a path into its directory and base components.
func splitPath(p string) (dir, base string) {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[:i], p[i+1:]
		}
	}
	return "", p
}

// Open implements FS. A missing file matches fs.ErrNotExist, like the real
// filesystem, so callers classifying errors see the same kinds either way.
func (f *FaultFS) Open(name string) (io.ReadCloser, error) {
	f.mu.Lock()
	delay := f.openDelay
	buf, ok := f.files[name]
	var data []byte
	if ok {
		data = bytes.Clone(buf.Bytes())
	}
	f.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if !ok {
		return nil, fmt.Errorf("walfault: open %s: %w", name, fs.ErrNotExist)
	}
	return io.NopCloser(bytes.NewReader(data)), nil
}

// OpenAppend implements FS.
func (f *FaultFS) OpenAppend(name string) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.files[name]; !ok {
		f.files[name] = &bytes.Buffer{}
	}
	return &faultFile{fs: f, name: name}, nil
}

// Truncate implements FS.
func (f *FaultFS) Truncate(name string, size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return fmt.Errorf("walfault: truncate %s: %w", name, ErrInjectedCrash)
	}
	buf, ok := f.files[name]
	if !ok {
		return fmt.Errorf("walfault: truncate %s: no such file", name)
	}
	if size < 0 || size > int64(buf.Len()) {
		return fmt.Errorf("walfault: truncate %s to %d: out of range [0,%d]", name, size, buf.Len())
	}
	buf.Truncate(int(size))
	return nil
}

// Size implements FS.
func (f *FaultFS) Size(name string) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	buf, ok := f.files[name]
	if !ok {
		return 0, fmt.Errorf("walfault: size %s: no such file", name)
	}
	return int64(buf.Len()), nil
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.files[name]; !ok {
		return fmt.Errorf("walfault: remove %s: no such file", name)
	}
	delete(f.files, name)
	return nil
}

// faultFile is an append handle routing every write through the fault
// checks. Close is a no-op (contents live in the FS map).
type faultFile struct {
	fs   *FaultFS
	name string
}

// Write implements File, applying the configured faults in order: armed
// short write, persistent write failure, crash budget.
func (ff *faultFile) Write(p []byte) (int, error) {
	f := ff.fs
	f.mu.Lock()
	defer f.mu.Unlock()
	buf, ok := f.files[ff.name]
	if !ok {
		return 0, fmt.Errorf("walfault: write %s: file removed", ff.name)
	}
	if f.short {
		f.short = false
		k := min(f.shortN, int64(len(p)))
		buf.Write(p[:k])
		f.written += k
		return int(k), fmt.Errorf("walfault: write %s: %w (short write, %d of %d bytes)",
			ff.name, ErrInjectedWriteFailure, k, len(p))
	}
	if f.writeErr != nil {
		return 0, fmt.Errorf("walfault: write %s: %w", ff.name, f.writeErr)
	}
	if f.crashed {
		return 0, fmt.Errorf("walfault: write %s: %w", ff.name, ErrInjectedCrash)
	}
	if f.crashBudget >= 0 && f.written+int64(len(p)) > f.crashBudget {
		k := f.crashBudget - f.written
		buf.Write(p[:k])
		f.written += k
		f.crashed = true
		return int(k), fmt.Errorf("walfault: write %s: %w (torn after %d of %d bytes)",
			ff.name, ErrInjectedCrash, k, len(p))
	}
	buf.Write(p)
	f.written += int64(len(p))
	return len(p), nil
}

// Sync implements File.
func (ff *faultFile) Sync() error {
	f := ff.fs
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return fmt.Errorf("walfault: sync %s: %w", ff.name, ErrInjectedCrash)
	}
	if f.syncErr != nil {
		return fmt.Errorf("walfault: sync %s: %w", ff.name, f.syncErr)
	}
	return nil
}

// Close implements File.
func (ff *faultFile) Close() error { return nil }
