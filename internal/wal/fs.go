package wal

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the small filesystem surface the WAL runs on. Production code uses
// OSFS; tests substitute a FaultFS that injects short writes, fsync errors
// and crash points at chosen byte offsets, which is how the crash-recovery
// property tests simulate power loss without killing the test process.
//
// All paths are as passed by the WAL (the segment directory joined with a
// segment file name); implementations must not interpret them further.
type FS interface {
	// MkdirAll creates the directory and any missing parents.
	MkdirAll(dir string) error
	// ReadDir lists the file names (not full paths) in the directory,
	// in unspecified order.
	ReadDir(dir string) ([]string, error)
	// Open opens an existing file for reading.
	Open(name string) (io.ReadCloser, error)
	// OpenAppend opens a file for appending, creating it when missing.
	// Writes always land at the current end of the file.
	OpenAppend(name string) (File, error)
	// Truncate cuts the named file to the given size. Used to discard a
	// torn tail during recovery and to roll back a partial append before
	// a retry.
	Truncate(name string, size int64) error
	// Size returns the current size of the named file in bytes.
	Size(name string) (int64, error)
	// Remove deletes the named file (checkpointing reclaims sealed
	// segments through it).
	Remove(name string) error
}

// File is an append-only segment handle.
type File interface {
	io.Writer
	// Sync flushes written data to stable storage (fsync).
	Sync() error
	// Close releases the handle. It does not imply Sync.
	Close() error
}

// OSFS is the production FS backed by the real filesystem.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// ReadDir implements FS.
func (OSFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Open implements FS.
func (OSFS) Open(name string) (io.ReadCloser, error) { return os.Open(name) }

// OpenAppend implements FS.
func (OSFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// Truncate implements FS.
func (OSFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// Size implements FS.
func (OSFS) Size(name string) (int64, error) {
	info, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// join builds a path inside the segment directory. Centralised so every FS
// sees consistent paths.
func join(dir, name string) string { return filepath.Join(dir, name) }
