package wal

import (
	"bytes"
	"errors"
	"testing"

	"viptree/internal/updatelog"
)

// fuzzSeedSegment builds a valid single-segment log of n records for the
// fuzz corpus.
func fuzzSeedSegment(n int) []byte {
	buf := []byte(segMagic)
	for i := 0; i < n; i++ {
		r := updatelog.Record{Seq: uint64(i + 1), Op: updatelog.OpInsert, ID: i, Loc: testLoc(i)}
		if i%3 == 2 {
			r.Op = updatelog.OpMove
		}
		if i%7 == 5 {
			r.Op = updatelog.OpDelete
		}
		buf = appendFrame(buf, &r)
	}
	return buf
}

// FuzzWALRecover feeds arbitrary bytes to segment recovery. Whatever the
// mutation, recovery must never panic, must return a contiguous sequence
// run when it succeeds, and must be idempotent: the truncation it performs
// repairs the log in place, so a second scan is clean and identical —
// mutated bytes can tear the tail, but can never silently drop records in
// front of intact ones (that is rejected as corruption instead).
func FuzzWALRecover(f *testing.F) {
	valid := fuzzSeedSegment(12)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])                   // torn mid-frame
	f.Add(append(bytes.Clone(valid), 0xDE, 0xAD)) // trailing garbage
	f.Add(valid[:len(segMagic)])                  // empty segment
	f.Add(valid[:3])                              // shorter than the magic
	f.Add([]byte{})                               // empty file
	f.Add(bytes.Repeat(valid, 2))                 // duplicated log (seq restart = corrupt)
	f.Add(fuzzSeedSegment(0))                     // magic only
	f.Fuzz(func(t *testing.T, data []byte) {
		fs := NewFaultFS()
		name := join("fuzz", segmentName(1))
		fs.WriteFile(name, data)
		w, err := Open(Options{Dir: "fuzz", FS: fs})
		if err != nil {
			// Rejected as corruption: acceptable, but it must be the typed
			// error and must reject identically on a second scan.
			var ce *CorruptionError
			if !errors.As(err, &ce) {
				t.Fatalf("recovery error is not a *CorruptionError: %v", err)
			}
			if _, err2 := Open(Options{Dir: "fuzz", FS: fs}); err2 == nil {
				t.Fatalf("corruption rejected once then accepted")
			}
			return
		}
		rec := w.Recovery()
		if got, want := uint64(len(rec.Records)), rec.Head-rec.Base; got != want {
			t.Fatalf("recovered %d records but head-base = %d", got, want)
		}
		for i, r := range rec.Records {
			if r.Seq != rec.Base+uint64(i)+1 {
				t.Fatalf("record %d has seq %d, want %d (gap)", i, r.Seq, rec.Base+uint64(i)+1)
			}
		}
		// Recovery repaired the file in place: scanning again must be
		// clean (no torn tail) and yield the identical records.
		w2, err := Open(Options{Dir: "fuzz", FS: fs})
		if err != nil {
			t.Fatalf("recovery not idempotent: second open failed: %v", err)
		}
		rec2 := w2.Recovery()
		if rec2.TornTail {
			t.Fatalf("second recovery still reports a torn tail")
		}
		if len(rec2.Records) != len(rec.Records) {
			t.Fatalf("second recovery returned %d records, first %d", len(rec2.Records), len(rec.Records))
		}
		for i := range rec.Records {
			if rec.Records[i] != rec2.Records[i] {
				t.Fatalf("second recovery diverges at record %d", i)
			}
		}
	})
}
