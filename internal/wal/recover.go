package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"strconv"
	"strings"
	"time"

	"viptree/internal/updatelog"
)

// On-disk layout. A WAL directory holds numbered segment files named
// <firstSeq>.wal (20 decimal digits, so lexical order is seq order). Each
// segment starts with an 8-byte magic and then holds back-to-back frames:
//
//	offset  size  field
//	0       4     payload length (big-endian uint32)
//	4       4     CRC-32C of the payload (big-endian uint32)
//	8       —     payload: one update record in the updatelog wire encoding
//
// Frames are self-delimiting and individually checksummed, so recovery can
// tell exactly where a torn write cut the log: the first frame of the LAST
// segment that is short or fails its CRC marks the torn tail, and everything
// before it is intact. The same damage anywhere else cannot be explained by
// a crashed append and is reported as mid-log corruption instead — a WAL
// never truncates data that a previous run had durably written in front of
// other data.
const (
	segMagic    = "VWALSEG1"
	segSuffix   = ".wal"
	frameHeader = 8
	// maxFrameLen bounds the payload length accepted during recovery; the
	// wire encoding of a record is tens of bytes, so anything near this
	// limit is a corrupt length field, not a real frame.
	maxFrameLen = 1 << 16
)

// crcTable is the CRC-32C (Castagnoli) table used for frame checksums.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt is the sentinel wrapped by every CorruptionError; check with
// errors.Is.
var ErrCorrupt = errors.New("wal: corrupt log")

// CorruptionError reports damage recovery refuses to repair: a bad frame in
// the middle of the log (not at the tail of the last segment), a record
// whose checksum passes but whose content does not decode, a sequence-number
// discontinuity, or a gap between segments. Unlike a torn tail — expected
// after a crash, silently truncated — mid-log corruption means previously
// durable data was damaged, and replaying past it would silently drop
// acknowledged updates; the only safe response is to fail the open.
type CorruptionError struct {
	// Segment is the file name of the damaged segment.
	Segment string
	// Offset is the byte offset of the damage within the segment.
	Offset int64
	// Reason describes the damage.
	Reason string
}

// Error implements error.
func (e *CorruptionError) Error() string {
	return fmt.Sprintf("wal: mid-log corruption in %s at offset %d: %s", e.Segment, e.Offset, e.Reason)
}

// Unwrap makes errors.Is(err, ErrCorrupt) hold.
func (e *CorruptionError) Unwrap() error { return ErrCorrupt }

// Recovery is the result of scanning a WAL directory: every intact record in
// sequence order, plus what (if anything) was cut from the tail.
type Recovery struct {
	// Records holds the recovered records; seqs are contiguous ascending,
	// Records[0].Seq == Base+1.
	Records []updatelog.Record
	// Base is the sequence number preceding the first retained record
	// (records up to Base were reclaimed by checkpointing; a snapshot
	// covering at least Base is required to reconstruct full state).
	Base uint64
	// Head is the last recovered sequence number; Head == Base when the
	// log is empty.
	Head uint64
	// Segments is the number of segment files scanned.
	Segments int
	// TornTail reports that a partial or corrupt frame was found at the
	// very tail of the last segment and truncated away — the expected
	// signature of a crash mid-append. TornSegment and DroppedBytes say
	// where and how much.
	TornTail     bool
	TornSegment  string
	DroppedBytes int64
	// Elapsed is the wall-clock duration of the scan.
	Elapsed time.Duration
}

// segInfo tracks one on-disk segment for the appender and Checkpoint.
type segInfo struct {
	name    string
	first   uint64 // seq of the first record (the name's number)
	last    uint64 // seq of the last record; last < first when empty
	size    int64
	records int
}

// segmentName renders the canonical file name of the segment whose first
// record carries seq.
func segmentName(seq uint64) string {
	return fmt.Sprintf("%020d%s", seq, segSuffix)
}

// parseSegmentName extracts the first-record seq from a segment file name.
func parseSegmentName(name string) (uint64, bool) {
	s, ok := strings.CutSuffix(name, segSuffix)
	if !ok || len(s) != 20 {
		return 0, false
	}
	seq, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// appendFrame appends the framed wire encoding of r to buf.
func appendFrame(buf []byte, r *updatelog.Record) []byte {
	// Reserve the header, encode the payload in place, then fill in the
	// header over the reserved bytes.
	start := len(buf)
	buf = append(buf, make([]byte, frameHeader)...)
	buf = updatelog.AppendRecord(buf, r)
	payload := buf[start+frameHeader:]
	binary.BigEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, crcTable))
	return buf
}

// tornError marks a frame-level problem that, at the tail of the last
// segment, is a torn write rather than corruption.
type tornError struct{ reason string }

func (e *tornError) Error() string { return e.reason }

// scanSegment decodes every frame of one segment body (the bytes after the
// magic), appending records to out. It returns the new record slice, the
// number of bytes consumed past the magic, and an error: a *tornError for
// damage a crashed append explains (short frame, bad CRC, bad length), or a
// *CorruptionError for damage it cannot (undecodable content or a seq
// discontinuity behind a valid checksum).
func scanSegment(name string, body []byte, expect uint64, out []updatelog.Record) ([]updatelog.Record, int64, error) {
	off := int64(0)
	for int64(len(body)) > off {
		rest := body[off:]
		if len(rest) < frameHeader {
			return out, off, &tornError{fmt.Sprintf("partial frame header (%d bytes)", len(rest))}
		}
		length := binary.BigEndian.Uint32(rest)
		if length == 0 || length > maxFrameLen {
			return out, off, &tornError{fmt.Sprintf("implausible frame length %d", length)}
		}
		if uint32(len(rest)-frameHeader) < length {
			return out, off, &tornError{fmt.Sprintf("partial frame payload (%d of %d bytes)", len(rest)-frameHeader, length)}
		}
		payload := rest[frameHeader : frameHeader+int(length)]
		if sum := crc32.Checksum(payload, crcTable); sum != binary.BigEndian.Uint32(rest[4:]) {
			return out, off, &tornError{"frame checksum mismatch"}
		}
		rec, n, err := updatelog.DecodeRecord(payload)
		if err != nil || n != len(payload) {
			// The checksum is valid but the content is not a record: a torn
			// write cannot produce this, so it is corruption wherever it is.
			reason := "framed payload is not a record"
			if err != nil {
				reason = fmt.Sprintf("framed payload does not decode: %v", err)
			}
			return out, off, &CorruptionError{Segment: name, Offset: off + int64(len(segMagic)), Reason: reason}
		}
		if rec.Seq != expect {
			return out, off, &CorruptionError{
				Segment: name, Offset: off + int64(len(segMagic)),
				Reason: fmt.Sprintf("record seq %d, expected %d", rec.Seq, expect),
			}
		}
		out = append(out, rec)
		expect++
		off += frameHeader + int64(length)
	}
	return out, off, nil
}

// hasValidFrameAfter reports whether any byte offset past the first one in
// rest starts a checksummed frame. It distinguishes a torn tail (garbage
// to the end of the file — truncatable) from mid-segment damage in the
// last segment (intact frames survive behind the bad one — corruption).
// The scan is bounded: real torn tails are at most one write long, so a
// frame that only appears beyond the horizon never occurs in practice.
func hasValidFrameAfter(rest []byte) bool {
	const scanHorizon = 4096
	for s := 1; s+frameHeader <= len(rest) && s <= scanHorizon; s++ {
		length := binary.BigEndian.Uint32(rest[s:])
		if length == 0 || length > maxFrameLen {
			continue
		}
		end := s + frameHeader + int(length)
		if end > len(rest) {
			continue
		}
		payload := rest[s+frameHeader : end]
		if crc32.Checksum(payload, crcTable) == binary.BigEndian.Uint32(rest[s+4:]) {
			return true
		}
	}
	return false
}

// recoverDir scans the WAL directory, truncating a torn tail in place, and
// returns the recovery result plus the per-segment layout the appender
// resumes from. Mid-log corruption fails the scan with a *CorruptionError.
func recoverDir(fs FS, dir string) (*Recovery, []segInfo, error) {
	start := time.Now()
	if err := fs.MkdirAll(dir); err != nil {
		return nil, nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: listing %s: %w", dir, err)
	}
	var segs []segInfo
	for _, name := range names {
		first, ok := parseSegmentName(name)
		if !ok {
			continue // foreign file; leave it alone
		}
		segs = append(segs, segInfo{name: name, first: first})
	}
	rec := &Recovery{}
	if len(segs) == 0 {
		rec.Elapsed = time.Since(start)
		return rec, nil, nil
	}
	rec.Base = segs[0].first - 1
	expect := segs[0].first
	for i := range segs {
		seg := &segs[i]
		last := i == len(segs)-1
		path := join(dir, seg.name)
		if seg.first != expect {
			return nil, nil, &CorruptionError{
				Segment: seg.name,
				Reason:  fmt.Sprintf("segment starts at seq %d, expected %d (missing segment?)", seg.first, expect),
			}
		}
		body, err := readAll(fs, path)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: reading %s: %w", seg.name, err)
		}
		if len(body) < len(segMagic) || string(body[:len(segMagic)]) != segMagic {
			if last && len(body) < len(segMagic) {
				// Crash between segment creation and the magic landing on
				// disk: the file holds no records, drop it entirely.
				rec.TornTail, rec.TornSegment = true, seg.name
				rec.DroppedBytes += int64(len(body))
				if err := fs.Remove(path); err != nil {
					return nil, nil, fmt.Errorf("wal: dropping torn segment %s: %w", seg.name, err)
				}
				segs = segs[:i]
				break
			}
			return nil, nil, &CorruptionError{Segment: seg.name, Reason: "bad segment magic"}
		}
		before := len(rec.Records)
		var consumed int64
		rec.Records, consumed, err = scanSegment(seg.name, body[len(segMagic):], expect, rec.Records)
		if err != nil {
			var torn *tornError
			if !errors.As(err, &torn) {
				return nil, nil, err
			}
			if !last {
				return nil, nil, &CorruptionError{
					Segment: seg.name, Offset: int64(len(segMagic)) + consumed,
					Reason: fmt.Sprintf("%s followed by segment %s", torn.reason, segs[i+1].name),
				}
			}
			if hasValidFrameAfter(body[int64(len(segMagic))+consumed:]) {
				// A torn write never leaves intact frames past the damage:
				// the bytes after the cut were simply never written. Valid
				// frames behind the bad one mean the damage hit previously
				// durable data — truncating would silently drop them.
				return nil, nil, &CorruptionError{
					Segment: seg.name, Offset: int64(len(segMagic)) + consumed,
					Reason: fmt.Sprintf("%s followed by intact frames", torn.reason),
				}
			}
			// Torn tail: cut the last segment back to its intact prefix.
			keep := int64(len(segMagic)) + consumed
			rec.TornTail, rec.TornSegment = true, seg.name
			rec.DroppedBytes += int64(len(body)) - keep
			if err := fs.Truncate(path, keep); err != nil {
				return nil, nil, fmt.Errorf("wal: truncating torn tail of %s: %w", seg.name, err)
			}
			body = body[:keep]
		}
		seg.records = len(rec.Records) - before
		seg.last = expect + uint64(seg.records) - 1
		seg.size = int64(len(segMagic)) + consumed
		expect += uint64(seg.records)
	}
	rec.Head = rec.Base + uint64(len(rec.Records))
	rec.Segments = len(segs)
	rec.Elapsed = time.Since(start)
	return rec, segs, nil
}

// readAll reads the whole file through the FS.
func readAll(fs FS, path string) ([]byte, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}
