// Package wal provides a durable, segmented write-ahead log for the object
// update stream (viptree/internal/updatelog). The in-memory update log gives
// ordered, gap-free sequence numbers and an exactly-once change feed; this
// package tails that feed and appends every applied record to disk in
// CRC-framed segments, so that a crashed process can reconstruct its exact
// pre-crash object state by restoring a snapshot and replaying the log
// suffix [snapshotSeq+1, head].
//
// # Durability contract
//
// A record is acknowledged-durable once it is covered by an fsync under the
// configured SyncPolicy: after every append batch (SyncAlways), at a fixed
// cadence (SyncInterval), or only at segment rotation and close
// (SyncOnRotate). DurableSeq reports the watermark; recovery is guaranteed
// to return every record at or below it, and may additionally return
// records that were written but not yet synced when the crash happened. A
// torn write at the tail of the last segment is expected crash damage and
// is truncated away; the same damage anywhere else is mid-log corruption
// and fails recovery with a *CorruptionError (see recover.go).
//
// # Degraded mode
//
// When an append or fsync keeps failing after bounded retries with
// exponential backoff, the WAL degrades instead of crashing the process: it
// reports StateDegraded (the engine then rejects updates with
// ErrDegradedReadOnly while reads keep serving), holds on to the unwritten
// batch, and keeps probing the disk at ProbeInterval. Once a probe
// succeeds, the backlog drains and the WAL returns to StateHealthy —
// updates flow again with no operator intervention.
//
// All file I/O goes through the FS interface: OSFS in production, FaultFS
// in tests (short writes, fsync failures, crash points at chosen byte
// offsets), which is how the crash-recovery property tests drive thousands
// of randomized power-loss scenarios in-process.
package wal

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"viptree/internal/updatelog"
)

// Errors reported by the WAL.
var (
	// ErrDegradedReadOnly reports that the WAL has entered degraded mode
	// after persistent append/fsync failures: updates are rejected until a
	// recovery probe succeeds, reads are unaffected.
	ErrDegradedReadOnly = errors.New("wal: log degraded after persistent append/fsync failures, serving read-only")
	// ErrClosed reports use of a closed WAL.
	ErrClosed = errors.New("wal: closed")
)

// SyncPolicy selects when appended records are fsynced, trading update
// durability against append latency. The zero value is SyncAlways.
type SyncPolicy struct {
	mode     syncMode
	interval time.Duration
}

type syncMode uint8

const (
	syncAlways syncMode = iota
	syncInterval
	syncOnRotate
)

// SyncAlways fsyncs after every append batch: an update is durable by the
// time the WAL has consumed it from the change feed. Safest, slowest.
func SyncAlways() SyncPolicy { return SyncPolicy{mode: syncAlways} }

// SyncInterval fsyncs at a fixed cadence: a crash loses at most the last
// d of acknowledged-to-memory updates. d must be positive.
func SyncInterval(d time.Duration) SyncPolicy {
	if d <= 0 {
		d = 5 * time.Millisecond
	}
	return SyncPolicy{mode: syncInterval, interval: d}
}

// SyncOnRotate fsyncs only when a segment fills (and at Close): cheapest,
// bounding loss to the unsynced tail of the active segment.
func SyncOnRotate() SyncPolicy { return SyncPolicy{mode: syncOnRotate} }

// String implements fmt.Stringer.
func (p SyncPolicy) String() string {
	switch p.mode {
	case syncInterval:
		return fmt.Sprintf("interval(%v)", p.interval)
	case syncOnRotate:
		return "onrotate"
	default:
		return "always"
	}
}

// Options configures a WAL.
type Options struct {
	// Dir is the segment directory; created when missing. Required.
	Dir string
	// FS is the filesystem the WAL runs on; nil selects the real one.
	FS FS
	// Sync is the fsync policy; the zero value is SyncAlways.
	Sync SyncPolicy
	// SegmentBytes is the rotation threshold: when the active segment
	// reaches it, the segment is synced, sealed and a new one started.
	// Zero selects 4 MiB.
	SegmentBytes int64
	// MaxRetries is how many times a failed append/fsync is retried (with
	// exponential backoff) before the WAL degrades to read-only. Zero
	// selects 4.
	MaxRetries int
	// RetryBackoff is the initial retry delay, doubling per attempt. Zero
	// selects 5ms.
	RetryBackoff time.Duration
	// ProbeInterval is the cadence of recovery probes while degraded.
	// Zero selects 500ms.
	ProbeInterval time.Duration
}

// withDefaults fills in the documented defaults.
func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = OSFS{}
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 4
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 5 * time.Millisecond
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 500 * time.Millisecond
	}
	return o
}

// State is the WAL's health state.
type State uint8

const (
	// StateHealthy means appends and fsyncs are succeeding.
	StateHealthy State = iota
	// StateDegraded means persistent append/fsync failures: the engine
	// rejects updates (ErrDegradedReadOnly) while recovery probes run.
	StateDegraded
	// StateClosed means the WAL has been closed.
	StateClosed
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateDegraded:
		return "degraded"
	case StateClosed:
		return "closed"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Health is a point-in-time snapshot of the WAL's state.
type Health struct {
	// State is the durability state machine's current state.
	State State
	// DurableSeq is the last sequence number covered by an fsync; every
	// record at or below it survives any crash.
	DurableSeq uint64
	// AppendedSeq is the last sequence number written to the active
	// segment (>= DurableSeq; the gap is the unsynced tail).
	AppendedSeq uint64
	// Segments is the number of on-disk segment files.
	Segments int
	// SizeBytes is the total on-disk size of all segments.
	SizeBytes int64
	// Err is the error that degraded the WAL; nil while healthy.
	Err error
	// DegradedSince is when the WAL degraded; zero while healthy.
	DegradedSince time.Time
}

// WAL is the durable tail of one update log. Open it over a directory
// (recovering whatever segments survive there), replay the recovered
// records into the index, then Follow the index's update log to persist
// every further applied update. One goroutine (started by Follow) performs
// all file I/O; the exported methods only read watermarks and never touch
// the disk, so they are safe from any goroutine.
type WAL struct {
	opts Options
	fs   FS
	dir  string
	rec  *Recovery

	mu   sync.Mutex
	cond *sync.Cond // broadcast on durable/state transitions
	// state machine + watermarks (guarded by mu).
	state         State
	lastErr       error
	degradedSince time.Time
	durable       uint64
	appended      uint64
	flushGoal     uint64 // highest requested Flush target; max-merged
	sealed        []segInfo
	active        segInfo
	hasActive     bool
	closed        bool

	// Appender-goroutine-only state (no locking needed).
	log        *updatelog.Log
	sub        *updatelog.Subscription
	activeFile File
	badWrite   bool // last write may have landed partially; truncate before retrying
	forceSync  bool // flush in progress: sync after every batch regardless of policy
	buf        []byte
	stop       chan struct{}
	done       chan struct{}
	flushReq   chan struct{} // signal: flushTarget (under mu) was raised
}

// Open scans the directory, truncates a torn tail if the last crash left
// one, and returns a WAL positioned after the last intact record. The
// recovered records (Recovery) must be replayed into the index before
// Follow attaches the WAL to the index's update log. Mid-log corruption
// fails with a *CorruptionError.
func Open(opts Options) (*WAL, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("wal: Options.Dir is required")
	}
	opts = opts.withDefaults()
	rec, segs, err := recoverDir(opts.FS, opts.Dir)
	if err != nil {
		return nil, err
	}
	w := &WAL{
		opts:     opts,
		fs:       opts.FS,
		dir:      opts.Dir,
		rec:      rec,
		durable:  rec.Head,
		appended: rec.Head,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		flushReq: make(chan struct{}, 1),
	}
	w.cond = sync.NewCond(&w.mu)
	if n := len(segs); n > 0 {
		// Resume appending into the last segment unless it already filled.
		if segs[n-1].size < opts.SegmentBytes {
			w.active, w.hasActive = segs[n-1], true
			w.sealed = segs[:n-1]
		} else {
			w.sealed = segs
		}
	}
	return w, nil
}

// Recovery returns the result of the opening scan: the surviving records
// and what, if anything, was truncated from the torn tail.
func (w *WAL) Recovery() *Recovery { return w.rec }

// Dir returns the segment directory.
func (w *WAL) Dir() string { return w.dir }

// Follow attaches the WAL to the update log and starts the appender: every
// record the log applies from now on is appended and fsynced per the sync
// policy. The log's head must match the recovered head — replay the
// recovered records first. When the log's head is ahead of the WAL (the
// index was restored from a snapshot newer than the log's tail), the
// now-redundant segments are dropped and the WAL restarts at the snapshot
// sequence.
func (w *WAL) Follow(log *updatelog.Log) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	if w.log != nil {
		w.mu.Unlock()
		return fmt.Errorf("wal: already following an update log")
	}
	logHead := log.HeadSeq()
	if logHead < w.appended {
		w.mu.Unlock()
		return fmt.Errorf("wal: update log head %d behind WAL head %d (recovered records not replayed?)", logHead, w.appended)
	}
	if logHead > w.appended {
		// Every on-disk record is <= appended <= logHead, so the snapshot
		// the log was restored from covers all of them; appending at
		// logHead+1 after the old tail would leave a sequence gap, so the
		// covered segments are dropped instead.
		for _, seg := range w.sealed {
			if err := w.fs.Remove(join(w.dir, seg.name)); err != nil {
				w.mu.Unlock()
				return fmt.Errorf("wal: dropping superseded segment %s: %w", seg.name, err)
			}
		}
		if w.hasActive {
			if err := w.fs.Remove(join(w.dir, w.active.name)); err != nil {
				w.mu.Unlock()
				return fmt.Errorf("wal: dropping superseded segment %s: %w", w.active.name, err)
			}
		}
		w.sealed, w.active, w.hasActive = nil, segInfo{}, false
		w.appended, w.durable = logHead, logHead
	}
	sub, err := log.Subscribe(w.appended+1, 1024)
	if err != nil {
		w.mu.Unlock()
		return fmt.Errorf("wal: subscribing at seq %d: %w", w.appended+1, err)
	}
	w.log = log
	w.sub = sub
	w.mu.Unlock()
	go w.run()
	return nil
}

// run is the appender loop: drain the change feed in batches, append,
// fsync per policy, advance the durable watermark. All file I/O happens
// here.
func (w *WAL) run() {
	defer close(w.done)
	var tickC <-chan time.Time
	if w.opts.Sync.mode == syncInterval {
		tick := time.NewTicker(w.opts.Sync.interval)
		defer tick.Stop()
		tickC = tick.C
	}
	events := w.sub.Events()
	batch := make([]updatelog.Record, 0, 256)
	for {
		select {
		case r, ok := <-events:
			if !ok {
				w.finish()
				return
			}
			batch = w.drainInto(batch[:0], r, events)
			if !w.writeDurably(batch) {
				w.finish()
				return
			}
		case <-tickC:
			if !w.syncDurably() {
				w.finish()
				return
			}
		case <-w.flushReq:
			if !w.flushTo(w.flushTarget(), events) {
				w.finish()
				return
			}
		case <-w.stop:
			w.finish()
			return
		}
	}
}

// drainInto gathers immediately available records behind the first one, so
// a burst of updates costs one write (and per SyncAlways one fsync) instead
// of one each.
func (w *WAL) drainInto(batch []updatelog.Record, first updatelog.Record, events <-chan updatelog.Record) []updatelog.Record {
	batch = append(batch, first)
	for len(batch) < cap(batch) {
		select {
		case r, ok := <-events:
			if !ok {
				return batch
			}
			batch = append(batch, r)
		default:
			return batch
		}
	}
	return batch
}

// flushTo consumes the feed until target is appended, then syncs — the
// Close/Flush path, which must not wait for a sync-policy tick. Returns
// false when stopped.
func (w *WAL) flushTo(target uint64, events <-chan updatelog.Record) bool {
	w.forceSync = true
	defer func() { w.forceSync = false }()
	batch := make([]updatelog.Record, 0, 256)
	for w.appendedSeq() < target {
		select {
		case r, ok := <-events:
			if !ok {
				return w.syncDurably()
			}
			batch = w.drainInto(batch[:0], r, events)
			if !w.writeDurably(batch) {
				return false
			}
		case <-w.stop:
			return false
		}
	}
	return w.syncDurably()
}

// finish performs the final sync and releases the file handle.
func (w *WAL) finish() {
	if w.activeFile != nil {
		if w.durableSeq() < w.appendedSeq() && !w.badWrite {
			if err := w.activeFile.Sync(); err == nil {
				w.noteDurable(w.appendedSeq())
			}
		}
		w.activeFile.Close()
		w.activeFile = nil
	}
}

// writeDurably appends the batch, retrying with exponential backoff and —
// after MaxRetries — degrading to read-only while it keeps probing at
// ProbeInterval. It returns only once the batch is written (true) or the
// WAL is stopped (false), so the feed is consumed strictly in order and
// no applied record is ever skipped.
func (w *WAL) writeDurably(batch []updatelog.Record) bool {
	failures := 0
	backoff := w.opts.RetryBackoff
	for {
		rest, err := w.tryAppend(batch)
		batch = rest
		if err == nil {
			w.noteHealthy()
			return true
		}
		failures++
		w.noteFailure(err, failures)
		if !w.sleepRetry(&backoff, failures) {
			return false
		}
	}
}

// syncDurably fsyncs the unsynced tail of the active segment with the same
// retry/degrade behaviour as writeDurably. Returns false when stopped.
func (w *WAL) syncDurably() bool {
	if w.activeFile == nil || w.durableSeq() >= w.appendedSeq() || w.badWrite {
		return true
	}
	failures := 0
	backoff := w.opts.RetryBackoff
	for {
		err := w.activeFile.Sync()
		if err == nil {
			w.noteDurable(w.appendedSeq())
			w.noteHealthy()
			return true
		}
		failures++
		w.noteFailure(fmt.Errorf("wal: fsync %s: %w", w.active.name, err), failures)
		if !w.sleepRetry(&backoff, failures) {
			return false
		}
	}
}

// sleepRetry waits out the backoff (capped at ProbeInterval once degraded)
// or returns false when the WAL is stopped meanwhile.
func (w *WAL) sleepRetry(backoff *time.Duration, failures int) bool {
	d := *backoff
	if failures > w.opts.MaxRetries {
		d = w.opts.ProbeInterval
	} else {
		*backoff = min(2*(*backoff), w.opts.ProbeInterval)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-w.stop:
		return false
	}
}

// tryAppend makes one attempt at appending the batch: roll back any torn
// previous attempt, then write the records in chunks that respect the
// segment threshold (rotating between chunks), and fsync when the policy
// (or an in-progress flush) asks for it. It returns the records it did NOT
// append, so a retry after a mid-batch failure resumes instead of
// duplicating the chunks that already landed.
func (w *WAL) tryAppend(batch []updatelog.Record) ([]updatelog.Record, error) {
	if w.badWrite {
		// The previous attempt may have left a partial frame; cut the
		// segment back to its last intact size before writing again.
		if w.activeFile != nil {
			w.activeFile.Close()
			w.activeFile = nil
		}
		path := join(w.dir, w.active.name)
		if err := w.fs.Truncate(path, w.active.size); err != nil {
			return batch, fmt.Errorf("wal: rolling back torn append in %s: %w", w.active.name, err)
		}
		w.badWrite = false
	}
	for len(batch) > 0 {
		w.buf = w.buf[:0]
		if !w.hasActive || w.active.size >= w.opts.SegmentBytes {
			if err := w.rotate(batch[0].Seq); err != nil {
				return batch, err
			}
			w.buf = append(w.buf, segMagic...)
		}
		if w.activeFile == nil {
			f, err := w.fs.OpenAppend(join(w.dir, w.active.name))
			if err != nil {
				return batch, fmt.Errorf("wal: opening segment %s: %w", w.active.name, err)
			}
			w.activeFile = f
		}
		// Fill one chunk: at least one record, stopping once the segment
		// crosses its threshold (the crossing record stays in — segments
		// may slightly exceed SegmentBytes, never split a frame).
		n := 0
		for n < len(batch) {
			w.buf = appendFrame(w.buf, &batch[n])
			n++
			if w.active.size+int64(len(w.buf)) >= w.opts.SegmentBytes {
				break
			}
		}
		if _, err := w.activeFile.Write(w.buf); err != nil {
			w.badWrite = true
			return batch, fmt.Errorf("wal: appending %d records to %s: %w", n, w.active.name, err)
		}
		w.noteAppended(batch[n-1].Seq, int64(len(w.buf)), n)
		batch = batch[n:]
	}
	if (w.opts.Sync.mode == syncAlways || w.forceSync) && w.activeFile != nil {
		if err := w.activeFile.Sync(); err != nil {
			// The bytes are written and intact — do not mark badWrite — but
			// they are not durable until a later sync succeeds.
			return batch, fmt.Errorf("wal: fsync %s: %w", w.active.name, err)
		}
		w.noteDurable(w.appendedSeq())
	}
	return nil, nil
}

// rotate seals the active segment (with a final sync — sealed segments are
// always durable) and stages a fresh one whose name carries firstSeq. The
// caller writes the magic as part of its next write.
func (w *WAL) rotate(firstSeq uint64) error {
	if w.hasActive && w.activeFile != nil {
		if w.durableSeq() < w.appendedSeq() {
			if err := w.activeFile.Sync(); err != nil {
				return fmt.Errorf("wal: fsync on rotation of %s: %w", w.active.name, err)
			}
			w.noteDurable(w.appendedSeq())
		}
		w.activeFile.Close()
		w.activeFile = nil
	}
	w.mu.Lock()
	if w.hasActive {
		w.sealed = append(w.sealed, w.active)
	}
	w.active = segInfo{name: segmentName(firstSeq), first: firstSeq, last: firstSeq - 1}
	w.hasActive = true
	w.mu.Unlock()
	return nil
}

// noteAppended advances the appended watermark after a successful write.
func (w *WAL) noteAppended(seq uint64, bytes int64, records int) {
	w.mu.Lock()
	w.appended = seq
	w.active.size += bytes
	w.active.last = seq
	w.active.records += records
	w.mu.Unlock()
}

// noteDurable advances the durable watermark (after a successful fsync),
// wakes WaitDurable callers and reports durability back to the update log,
// which reclaims the covered in-memory history automatically.
func (w *WAL) noteDurable(seq uint64) {
	w.mu.Lock()
	if seq > w.durable {
		w.durable = seq
	}
	w.cond.Broadcast()
	w.mu.Unlock()
	if w.log != nil {
		w.log.AdvanceDurable(seq)
	}
}

// noteHealthy clears degraded state after a successful attempt.
func (w *WAL) noteHealthy() {
	w.mu.Lock()
	if w.state == StateDegraded {
		w.state = StateHealthy
		w.lastErr = nil
		w.degradedSince = time.Time{}
		w.cond.Broadcast()
	}
	w.mu.Unlock()
}

// noteFailure records a failed attempt, degrading the WAL once the retry
// budget is exhausted.
func (w *WAL) noteFailure(err error, failures int) {
	w.mu.Lock()
	w.lastErr = err
	if failures > w.opts.MaxRetries && w.state == StateHealthy {
		w.state = StateDegraded
		w.degradedSince = time.Now()
		w.cond.Broadcast()
	}
	w.mu.Unlock()
}

// appendedSeq returns the appended watermark.
func (w *WAL) appendedSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appended
}

// durableSeq returns the durable watermark.
func (w *WAL) durableSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.durable
}

// DurableSeq returns the last sequence number covered by an fsync. Every
// record at or below it survives any crash.
func (w *WAL) DurableSeq() uint64 { return w.durableSeq() }

// AppendedSeq returns the last sequence number written to disk (possibly
// not yet synced).
func (w *WAL) AppendedSeq() uint64 { return w.appendedSeq() }

// Healthy reports whether the WAL is accepting appends (not degraded, not
// closed).
func (w *WAL) Healthy() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.state == StateHealthy && !w.closed
}

// Health returns a point-in-time snapshot of the WAL's state.
func (w *WAL) Health() Health {
	w.mu.Lock()
	defer w.mu.Unlock()
	h := Health{
		State:         w.state,
		DurableSeq:    w.durable,
		AppendedSeq:   w.appended,
		Err:           w.lastErr,
		DegradedSince: w.degradedSince,
	}
	if w.closed {
		h.State = StateClosed
	}
	for _, seg := range w.sealed {
		h.Segments++
		h.SizeBytes += seg.size
	}
	if w.hasActive {
		h.Segments++
		h.SizeBytes += w.active.size
	}
	return h
}

// WaitDurable blocks until the durable watermark reaches seq, the WAL
// degrades, or it is closed. It does not force an fsync — under
// SyncInterval/SyncOnRotate use Flush instead.
func (w *WAL) WaitDurable(seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.durable < seq && w.state == StateHealthy && !w.closed {
		w.cond.Wait()
	}
	if w.durable >= seq {
		return nil
	}
	if w.state == StateDegraded {
		return fmt.Errorf("%w (durable %d, waiting for %d: %v)", ErrDegradedReadOnly, w.durable, seq, w.lastErr)
	}
	return ErrClosed
}

// Flush appends everything the update log has applied so far and fsyncs
// it, regardless of the sync policy. It returns once the log's current head
// is durable, or with an error when the WAL is degraded or closed.
func (w *WAL) Flush() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	if w.log == nil {
		w.mu.Unlock()
		return nil
	}
	target := w.log.HeadSeq()
	if target > w.flushGoal {
		w.flushGoal = target
	}
	w.mu.Unlock()
	select {
	case w.flushReq <- struct{}{}:
	default: // a signal is already pending; the appender reads the max goal
	}
	return w.WaitDurable(target)
}

// flushTarget reads the highest requested flush goal.
func (w *WAL) flushTarget() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushGoal
}

// Close flushes (everything applied by the log at the time of the call is
// made durable), stops the appender and releases the file handle. A
// degraded WAL cannot flush; Close then returns the degradation error and
// the unsynced suffix is lost — exactly the records that were never
// acknowledged as durable. Close is idempotent.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	started := w.log != nil
	w.mu.Unlock()

	var flushErr error
	if started {
		w.mu.Lock()
		target := w.log.HeadSeq()
		if target > w.flushGoal {
			w.flushGoal = target
		}
		w.mu.Unlock()
		select {
		case w.flushReq <- struct{}{}:
		default:
		}
		w.mu.Lock()
		for w.durable < target && w.state == StateHealthy {
			w.cond.Wait()
		}
		if w.durable < target {
			flushErr = fmt.Errorf("%w: %d updates not durable at close: %v", ErrDegradedReadOnly, target-w.durable, w.lastErr)
		}
		w.mu.Unlock()
		close(w.stop)
		<-w.done
		w.sub.Close()
	}
	w.mu.Lock()
	w.state = StateClosed
	w.cond.Broadcast()
	w.mu.Unlock()
	return flushErr
}

// Checkpoint removes sealed segments fully covered by seq — typically the
// sequence number a just-written snapshot was stamped with, after which
// recovery never needs those records again. Only a prefix of segments can
// be removed (a hole would be mid-log corruption on the next open); the
// active segment is never touched. Returns the number of segments removed.
func (w *WAL) Checkpoint(seq uint64) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	removed := 0
	for _, seg := range w.sealed {
		if seg.records == 0 || seg.last > seq {
			break
		}
		if err := w.fs.Remove(join(w.dir, seg.name)); err != nil {
			w.sealed = w.sealed[removed:]
			return removed, fmt.Errorf("wal: removing checkpointed segment %s: %w", seg.name, err)
		}
		removed++
	}
	w.sealed = w.sealed[removed:]
	return removed, nil
}
