package wal

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"viptree/internal/geom"
	"viptree/internal/model"
	"viptree/internal/updatelog"
)

// recApplier is a minimal updatelog.Applier for WAL tests: it assigns
// insert IDs from a counter and keeps every applied record so tests can
// compare the on-disk log against ground truth.
type recApplier struct {
	nextID int
	mu     sync.Mutex
	seen   []updatelog.Record
}

func (a *recApplier) ApplyUpdate(r *updatelog.Record) error {
	if r.Op == updatelog.OpInsert {
		r.ID = a.nextID
		a.nextID++
	}
	a.mu.Lock()
	a.seen = append(a.seen, *r)
	a.mu.Unlock()
	return nil
}

func (a *recApplier) PublishEpoch(uint64) {}

func (a *recApplier) applied() []updatelog.Record {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]updatelog.Record, len(a.seen))
	copy(out, a.seen)
	return out
}

func testLoc(i int) model.Location {
	return model.Location{
		Partition: model.PartitionID(i % 7),
		Point:     geom.Point{X: float64(i), Y: float64((i * 3) % 101), Floor: i % 3},
	}
}

// submitMixed drives n updates through the log: mostly inserts, with
// deletes and moves mixed in once objects exist.
func submitMixed(t testing.TB, log *updatelog.Log, n int) {
	t.Helper()
	var ids []int
	for i := 0; i < n; i++ {
		switch {
		case len(ids) > 4 && i%5 == 3:
			id := ids[i%len(ids)]
			if _, _, err := log.Submit(updatelog.OpMove, id, testLoc(i+1000)); err != nil {
				t.Fatalf("move: %v", err)
			}
		case len(ids) > 8 && i%11 == 7:
			id := ids[0]
			ids = ids[1:]
			if _, _, err := log.Submit(updatelog.OpDelete, id, model.Location{}); err != nil {
				t.Fatalf("delete: %v", err)
			}
		default:
			id, _, err := log.Submit(updatelog.OpInsert, 0, testLoc(i))
			if err != nil {
				t.Fatalf("insert: %v", err)
			}
			ids = append(ids, id)
		}
	}
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// openWAL opens a WAL over fs with fast test timings.
func openWAL(t testing.TB, fs FS, opt Options) *WAL {
	t.Helper()
	if opt.Dir == "" {
		opt.Dir = "waltest"
	}
	opt.FS = fs
	if opt.MaxRetries == 0 {
		opt.MaxRetries = 2
	}
	if opt.RetryBackoff == 0 {
		opt.RetryBackoff = 200 * time.Microsecond
	}
	if opt.ProbeInterval == 0 {
		opt.ProbeInterval = 500 * time.Microsecond
	}
	w, err := Open(opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return w
}

func TestOpenEmptyDir(t *testing.T) {
	w := openWAL(t, NewFaultFS(), Options{})
	rec := w.Recovery()
	if len(rec.Records) != 0 || rec.Base != 0 || rec.Head != 0 || rec.TornTail {
		t.Fatalf("unexpected recovery from empty dir: %+v", rec)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	fs := NewFaultFS()
	app := &recApplier{}
	log := updatelog.New(app, 0)
	w := openWAL(t, fs, Options{Sync: SyncAlways()})
	if err := w.Follow(log); err != nil {
		t.Fatalf("Follow: %v", err)
	}
	submitMixed(t, log, 100)
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if got, want := w.DurableSeq(), log.HeadSeq(); got != want {
		t.Fatalf("durable %d after flush, want head %d", got, want)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	w2 := openWAL(t, fs, Options{})
	rec := w2.Recovery()
	if rec.TornTail {
		t.Fatalf("clean shutdown recovered a torn tail: %+v", rec)
	}
	if !reflect.DeepEqual(rec.Records, app.applied()) {
		t.Fatalf("recovered %d records != applied %d records", len(rec.Records), len(app.applied()))
	}
	if rec.Head != log.HeadSeq() {
		t.Fatalf("recovered head %d, want %d", rec.Head, log.HeadSeq())
	}
}

func TestOSFSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	app := &recApplier{}
	log := updatelog.New(app, 0)
	w, err := Open(Options{Dir: dir, SegmentBytes: 512})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := w.Follow(log); err != nil {
		t.Fatalf("Follow: %v", err)
	}
	submitMixed(t, log, 200)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	w2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	rec := w2.Recovery()
	if !reflect.DeepEqual(rec.Records, app.applied()) {
		t.Fatalf("recovered %d records != applied %d", len(rec.Records), len(app.applied()))
	}
	if rec.Segments < 2 {
		t.Fatalf("expected rotation to produce multiple segments, got %d", rec.Segments)
	}
}

func TestRotationAndHealthAccounting(t *testing.T) {
	fs := NewFaultFS()
	app := &recApplier{}
	log := updatelog.New(app, 0)
	w := openWAL(t, fs, Options{SegmentBytes: 256})
	if err := w.Follow(log); err != nil {
		t.Fatalf("Follow: %v", err)
	}
	submitMixed(t, log, 150)
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	h := w.Health()
	if h.State != StateHealthy {
		t.Fatalf("state %v, want healthy", h.State)
	}
	if h.Segments < 2 {
		t.Fatalf("expected >= 2 segments at 256B threshold, got %d", h.Segments)
	}
	if h.DurableSeq != log.HeadSeq() || h.AppendedSeq != log.HeadSeq() {
		t.Fatalf("watermarks %d/%d, want %d", h.DurableSeq, h.AppendedSeq, log.HeadSeq())
	}
	if h.SizeBytes == 0 {
		t.Fatalf("zero on-disk size after 150 records")
	}
	w.Close()

	w2 := openWAL(t, fs, Options{})
	if !reflect.DeepEqual(w2.Recovery().Records, app.applied()) {
		t.Fatalf("multi-segment recovery mismatch")
	}
}

// TestCheckpoint exercises segment reclamation: with a 1-byte threshold and
// one record flushed at a time, every record seals its own segment, so the
// checkpoint boundary is deterministic.
func TestCheckpoint(t *testing.T) {
	fs := NewFaultFS()
	app := &recApplier{}
	log := updatelog.New(app, 0)
	w := openWAL(t, fs, Options{SegmentBytes: 1})
	if err := w.Follow(log); err != nil {
		t.Fatalf("Follow: %v", err)
	}
	for i := 0; i < 10; i++ {
		if _, _, err := log.Submit(updatelog.OpInsert, 0, testLoc(i)); err != nil {
			t.Fatalf("insert: %v", err)
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
	}
	removed, err := w.Checkpoint(5)
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if removed != 5 {
		t.Fatalf("removed %d segments, want 5", removed)
	}
	// Checkpointing again at the same seq is a no-op.
	if again, _ := w.Checkpoint(5); again != 0 {
		t.Fatalf("second checkpoint removed %d segments, want 0", again)
	}
	w.Close()

	w2 := openWAL(t, fs, Options{})
	rec := w2.Recovery()
	if rec.Base != 5 || rec.Head != 10 {
		t.Fatalf("recovered base/head %d/%d, want 5/10", rec.Base, rec.Head)
	}
	if !reflect.DeepEqual(rec.Records, app.applied()[5:]) {
		t.Fatalf("post-checkpoint recovery is not the [6,10] suffix")
	}
}

// TestDurableWatermarkTruncatesHistory checks the automatic
// Log.AdvanceDurable wiring: once the WAL fsyncs records, the update log's
// in-memory history is reclaimed without any manual Truncate call.
func TestDurableWatermarkTruncatesHistory(t *testing.T) {
	fs := NewFaultFS()
	app := &recApplier{}
	log := updatelog.New(app, 0)
	w := openWAL(t, fs, Options{Sync: SyncAlways()})
	if err := w.Follow(log); err != nil {
		t.Fatalf("Follow: %v", err)
	}
	submitMixed(t, log, 50)
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if got := log.DurableSeq(); got != log.HeadSeq() {
		t.Fatalf("log durable watermark %d, want %d", got, log.HeadSeq())
	}
	// The WAL's own subscription has consumed everything it flushed, so
	// the durability hook may reclaim the full history: seq 1 must no
	// longer be retained.
	waitUntil(t, time.Second, "history reclaim", func() bool {
		_, err := log.Records(1, 1)
		return err != nil
	})
	w.Close()
}

func TestTornTailTruncated(t *testing.T) {
	fs := NewFaultFS()
	app := &recApplier{}
	log := updatelog.New(app, 0)
	w := openWAL(t, fs, Options{})
	if err := w.Follow(log); err != nil {
		t.Fatalf("Follow: %v", err)
	}
	submitMixed(t, log, 20)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Cut the last frame short: a classic torn write.
	name := join("waltest", segmentName(1))
	data, ok := fs.Contents(name)
	if !ok {
		t.Fatalf("segment %s missing", name)
	}
	fs.WriteFile(name, data[:len(data)-5])

	w2 := openWAL(t, fs, Options{})
	rec := w2.Recovery()
	if !rec.TornTail {
		t.Fatalf("expected TornTail, got %+v", rec)
	}
	applied := app.applied()
	if !reflect.DeepEqual(rec.Records, applied[:len(applied)-1]) {
		t.Fatalf("torn-tail recovery kept %d records, want the %d-record prefix", len(rec.Records), len(applied)-1)
	}
	if rec.DroppedBytes == 0 {
		t.Fatalf("DroppedBytes not reported")
	}
	w2.Close()

	// The truncation repaired the log in place: a second recovery is
	// clean and returns the identical prefix.
	w3 := openWAL(t, fs, Options{})
	rec3 := w3.Recovery()
	if rec3.TornTail {
		t.Fatalf("second recovery still torn: %+v", rec3)
	}
	if !reflect.DeepEqual(rec3.Records, rec.Records) {
		t.Fatalf("recovery is not idempotent")
	}
}

func TestTornTailGarbageAppended(t *testing.T) {
	fs := NewFaultFS()
	app := &recApplier{}
	log := updatelog.New(app, 0)
	w := openWAL(t, fs, Options{})
	if err := w.Follow(log); err != nil {
		t.Fatalf("Follow: %v", err)
	}
	submitMixed(t, log, 10)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	name := join("waltest", segmentName(1))
	data, _ := fs.Contents(name)
	fs.WriteFile(name, append(data, 0xDE, 0xAD, 0xBE))

	w2 := openWAL(t, fs, Options{})
	rec := w2.Recovery()
	if !rec.TornTail {
		t.Fatalf("expected TornTail for trailing garbage")
	}
	if !reflect.DeepEqual(rec.Records, app.applied()) {
		t.Fatalf("trailing garbage dropped intact records")
	}
}

func TestMidLogCorruptionRejected(t *testing.T) {
	fs := NewFaultFS()
	app := &recApplier{}
	log := updatelog.New(app, 0)
	w := openWAL(t, fs, Options{})
	if err := w.Follow(log); err != nil {
		t.Fatalf("Follow: %v", err)
	}
	submitMixed(t, log, 50)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Flip a payload byte in an early frame: the CRC fails mid-log, which
	// recovery must refuse to repair (truncating would drop durable data).
	name := join("waltest", segmentName(1))
	data, _ := fs.Contents(name)
	data[len(segMagic)+frameHeader+3] ^= 0xFF
	fs.WriteFile(name, data)

	_, err := Open(Options{Dir: "waltest", FS: fs})
	if err == nil {
		t.Fatalf("open succeeded over mid-log corruption")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("error %v does not wrap ErrCorrupt", err)
	}
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v is not a *CorruptionError", err)
	}
	if ce.Segment != segmentName(1) {
		t.Fatalf("corruption attributed to %q, want %q", ce.Segment, segmentName(1))
	}
}

func TestSegmentGapRejected(t *testing.T) {
	fs := NewFaultFS()
	app := &recApplier{}
	log := updatelog.New(app, 0)
	w := openWAL(t, fs, Options{SegmentBytes: 1})
	if err := w.Follow(log); err != nil {
		t.Fatalf("Follow: %v", err)
	}
	for i := 0; i < 6; i++ {
		if _, _, err := log.Submit(updatelog.OpInsert, 0, testLoc(i)); err != nil {
			t.Fatalf("insert: %v", err)
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
	}
	w.Close()

	// Deleting a middle segment leaves a sequence gap.
	if err := fs.Remove(join("waltest", segmentName(3))); err != nil {
		t.Fatalf("remove: %v", err)
	}
	_, err := Open(Options{Dir: "waltest", FS: fs})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("gap not rejected as corruption: %v", err)
	}
}

// TestTornFrameInNonLastSegmentRejected: damage that would be a torn tail
// in the last segment is mid-log corruption when another segment follows.
func TestTornFrameInNonLastSegmentRejected(t *testing.T) {
	fs := NewFaultFS()
	app := &recApplier{}
	log := updatelog.New(app, 0)
	w := openWAL(t, fs, Options{SegmentBytes: 1})
	if err := w.Follow(log); err != nil {
		t.Fatalf("Follow: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := log.Submit(updatelog.OpInsert, 0, testLoc(i)); err != nil {
			t.Fatalf("insert: %v", err)
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
	}
	w.Close()

	name := join("waltest", segmentName(2))
	data, _ := fs.Contents(name)
	fs.WriteFile(name, data[:len(data)-4])

	_, err := Open(Options{Dir: "waltest", FS: fs})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn frame in non-last segment not rejected: %v", err)
	}
}

func TestShortWriteRolledBackAndRetried(t *testing.T) {
	fs := NewFaultFS()
	app := &recApplier{}
	log := updatelog.New(app, 0)
	w := openWAL(t, fs, Options{Sync: SyncAlways()})
	if err := w.Follow(log); err != nil {
		t.Fatalf("Follow: %v", err)
	}
	submitMixed(t, log, 10)
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	// The next append tears after 7 bytes; the WAL must truncate the
	// partial frame and rewrite, so every record appears exactly once.
	fs.ShortWriteOnce(7)
	submitMixed(t, log, 10)
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush after short write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	w2 := openWAL(t, fs, Options{})
	rec := w2.Recovery()
	if rec.TornTail {
		t.Fatalf("short write left a torn tail after rollback")
	}
	if !reflect.DeepEqual(rec.Records, app.applied()) {
		t.Fatalf("short write dropped or duplicated records: recovered %d, applied %d", len(rec.Records), len(app.applied()))
	}
}

func TestWriteFailureDegradesThenRecovers(t *testing.T) {
	fs := NewFaultFS()
	app := &recApplier{}
	log := updatelog.New(app, 0)
	w := openWAL(t, fs, Options{Sync: SyncAlways(), MaxRetries: 2})
	if err := w.Follow(log); err != nil {
		t.Fatalf("Follow: %v", err)
	}
	submitMixed(t, log, 5)
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	fs.FailWrites()
	submitMixed(t, log, 5)
	waitUntil(t, 5*time.Second, "degraded state", func() bool {
		return w.Health().State == StateDegraded
	})
	if w.Healthy() {
		t.Fatalf("Healthy() true while degraded")
	}
	h := w.Health()
	if h.Err == nil || !errors.Is(h.Err, ErrInjectedWriteFailure) {
		t.Fatalf("health err %v, want injected write failure", h.Err)
	}
	if h.DegradedSince.IsZero() {
		t.Fatalf("DegradedSince not set")
	}

	// Clearing the fault lets a probe succeed; the backlog drains and the
	// WAL heals itself.
	fs.ClearFaults()
	waitUntil(t, 5*time.Second, "recovery probe", func() bool {
		return w.Health().State == StateHealthy && w.DurableSeq() == log.HeadSeq()
	})
	if err := w.Close(); err != nil {
		t.Fatalf("Close after recovery: %v", err)
	}

	w2 := openWAL(t, fs, Options{})
	if !reflect.DeepEqual(w2.Recovery().Records, app.applied()) {
		t.Fatalf("records lost across degraded episode")
	}
}

func TestSyncFailureDegradesThenRecovers(t *testing.T) {
	fs := NewFaultFS()
	app := &recApplier{}
	log := updatelog.New(app, 0)
	w := openWAL(t, fs, Options{Sync: SyncAlways(), MaxRetries: 2})
	if err := w.Follow(log); err != nil {
		t.Fatalf("Follow: %v", err)
	}
	submitMixed(t, log, 5)
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	fs.FailSync()
	submitMixed(t, log, 5)
	waitUntil(t, 5*time.Second, "degraded state", func() bool {
		return w.Health().State == StateDegraded
	})
	if errors.Is(w.Health().Err, ErrInjectedSyncFailure) == false {
		t.Fatalf("health err %v, want injected sync failure", w.Health().Err)
	}
	// While degraded, a Flush must fail fast with ErrDegradedReadOnly
	// rather than hang.
	if err := w.Flush(); !errors.Is(err, ErrDegradedReadOnly) {
		t.Fatalf("Flush while degraded: %v, want ErrDegradedReadOnly", err)
	}

	fs.ClearFaults()
	waitUntil(t, 5*time.Second, "recovery probe", func() bool {
		return w.Health().State == StateHealthy && w.DurableSeq() == log.HeadSeq()
	})
	if err := w.Close(); err != nil {
		t.Fatalf("Close after recovery: %v", err)
	}
}

func TestFlushForcesSyncUnderOnRotate(t *testing.T) {
	fs := NewFaultFS()
	app := &recApplier{}
	log := updatelog.New(app, 0)
	w := openWAL(t, fs, Options{Sync: SyncOnRotate()})
	if err := w.Follow(log); err != nil {
		t.Fatalf("Follow: %v", err)
	}
	submitMixed(t, log, 25)
	// No rotation happened (default 4MiB threshold), so only Flush can
	// make these durable.
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if w.DurableSeq() != log.HeadSeq() {
		t.Fatalf("durable %d after forced flush, want %d", w.DurableSeq(), log.HeadSeq())
	}
	w.Close()
}

func TestIntervalSyncAdvancesDurable(t *testing.T) {
	fs := NewFaultFS()
	app := &recApplier{}
	log := updatelog.New(app, 0)
	w := openWAL(t, fs, Options{Sync: SyncInterval(time.Millisecond)})
	if err := w.Follow(log); err != nil {
		t.Fatalf("Follow: %v", err)
	}
	submitMixed(t, log, 25)
	waitUntil(t, 5*time.Second, "interval sync", func() bool {
		return w.DurableSeq() == log.HeadSeq()
	})
	w.Close()
}

func TestWaitDurableOnClosed(t *testing.T) {
	w := openWAL(t, NewFaultFS(), Options{})
	w.Close()
	if err := w.WaitDurable(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("WaitDurable on closed WAL: %v, want ErrClosed", err)
	}
	if _, err := w.Checkpoint(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Checkpoint on closed WAL: %v, want ErrClosed", err)
	}
}

// TestFollowSnapshotAhead: the index was restored from a snapshot stamped
// past the WAL's tail, so the old segments are fully covered and must be
// dropped; the WAL restarts at the snapshot seq.
func TestFollowSnapshotAhead(t *testing.T) {
	fs := NewFaultFS()
	log1 := updatelog.New(&recApplier{}, 0)
	w := openWAL(t, fs, Options{})
	if err := w.Follow(log1); err != nil {
		t.Fatalf("Follow: %v", err)
	}
	submitMixed(t, log1, 10)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Restore "from a snapshot" at seq 25 without replaying the WAL.
	app := &recApplier{}
	log2 := updatelog.New(app, 25)
	w2 := openWAL(t, fs, Options{})
	if err := w2.Follow(log2); err != nil {
		t.Fatalf("Follow with snapshot ahead: %v", err)
	}
	submitMixed(t, log2, 5)
	if err := w2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	w3 := openWAL(t, fs, Options{})
	rec := w3.Recovery()
	if rec.Base != 25 || rec.Head != 30 {
		t.Fatalf("base/head %d/%d after snapshot-ahead restart, want 25/30", rec.Base, rec.Head)
	}
	if !reflect.DeepEqual(rec.Records, app.applied()) {
		t.Fatalf("snapshot-ahead restart lost records")
	}
}

// TestFollowLogBehind: attaching to a log whose head predates the WAL's
// records means the recovered suffix was not replayed — an error, not
// silent data loss.
func TestFollowLogBehind(t *testing.T) {
	fs := NewFaultFS()
	log1 := updatelog.New(&recApplier{}, 0)
	w := openWAL(t, fs, Options{})
	if err := w.Follow(log1); err != nil {
		t.Fatalf("Follow: %v", err)
	}
	submitMixed(t, log1, 10)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	w2 := openWAL(t, fs, Options{})
	if err := w2.Follow(updatelog.New(&recApplier{}, 0)); err == nil {
		t.Fatalf("Follow accepted a log behind the WAL head")
	}
}

// TestCrashRecoveryProperty is the central crash-safety test: 100 crashes
// at randomized byte offsets during a concurrent update storm with
// fsync=Always. After each crash the surviving bytes are recovered and
// must be exactly a prefix of the applied updates — no acknowledged
// (durable-watermark) update lost, no reordering, no invention.
func TestCrashRecoveryProperty(t *testing.T) {
	const (
		crashes = 100
		storm   = 120
	)
	rng := rand.New(rand.NewSource(0x5EED))
	for i := 0; i < crashes; i++ {
		i := i
		t.Run(fmt.Sprintf("crash%02d", i), func(t *testing.T) {
			fs := NewFaultFS()
			app := &recApplier{}
			log := updatelog.New(app, 0)
			w := openWAL(t, fs, Options{
				Sync:         SyncAlways(),
				SegmentBytes: int64(256 + rng.Intn(2048)),
				MaxRetries:   1,
			})
			if err := w.Follow(log); err != nil {
				t.Fatalf("Follow: %v", err)
			}
			// Arm the crash somewhere inside the byte range the storm will
			// write (~45B/record incl. framing).
			fs.CrashAfter(int64(rng.Intn(storm * 45)))

			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					for k := 0; k < storm/4; k++ {
						log.Submit(updatelog.OpInsert, 0, testLoc(g*1000+k))
					}
				}()
			}
			wg.Wait()
			durable := w.DurableSeq()
			w.Close() // returns an error when the crash hit mid-flush; expected

			if !fs.Crashed() {
				// The random offset landed beyond what the storm wrote;
				// still a valid (clean) recovery case.
				durable = w.DurableSeq()
			}
			fs.Revive()

			w2, err := Open(Options{Dir: "waltest", FS: fs})
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			rec := w2.Recovery()
			applied := app.applied()
			if uint64(len(rec.Records)) < durable {
				t.Fatalf("lost acknowledged updates: durable watermark %d, recovered %d", durable, len(rec.Records))
			}
			if len(rec.Records) > len(applied) {
				t.Fatalf("recovered %d records, only %d were applied", len(rec.Records), len(applied))
			}
			for k := range rec.Records {
				if rec.Records[k] != applied[k] {
					t.Fatalf("recovered records diverge at %d: got %+v, want %+v (recovered %d, applied %d)",
						k, rec.Records[k], applied[k], len(rec.Records), len(applied))
				}
			}
			// Recovery repaired the log: a second scan is clean and
			// identical.
			w3, err := Open(Options{Dir: "waltest", FS: fs})
			if err != nil {
				t.Fatalf("second recovery failed: %v", err)
			}
			if w3.Recovery().TornTail {
				t.Fatalf("second recovery still torn")
			}
			if !reflect.DeepEqual(w3.Recovery().Records, rec.Records) {
				t.Fatalf("recovery not idempotent")
			}
		})
	}
}

// TestResumeAfterCrashRecovery: after a crash and recovery, a new WAL over
// the same directory keeps appending where the survivors end, and the next
// recovery sees one contiguous log.
func TestResumeAfterCrashRecovery(t *testing.T) {
	fs := NewFaultFS()
	app := &recApplier{}
	log := updatelog.New(app, 0)
	w := openWAL(t, fs, Options{Sync: SyncAlways(), SegmentBytes: 512, MaxRetries: 1})
	if err := w.Follow(log); err != nil {
		t.Fatalf("Follow: %v", err)
	}
	fs.CrashAfter(1500)
	submitMixed(t, log, 80)
	w.Close()
	if !fs.Crashed() {
		t.Fatalf("crash point not reached")
	}
	fs.Revive()

	w2 := openWAL(t, fs, Options{Sync: SyncAlways(), SegmentBytes: 512})
	rec := w2.Recovery()
	survivors := len(rec.Records)

	// Resume: a fresh log seeded with the survivors (as the engine does
	// after replay) and more traffic on top.
	app2 := &recApplier{}
	log2 := updatelog.New(app2, rec.Head)
	if err := w2.Follow(log2); err != nil {
		t.Fatalf("Follow after recovery: %v", err)
	}
	submitMixed(t, log2, 40)
	if err := w2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	w3 := openWAL(t, fs, Options{})
	rec3 := w3.Recovery()
	if got, want := len(rec3.Records), survivors+40; got != want {
		t.Fatalf("final log holds %d records, want %d", got, want)
	}
	if !reflect.DeepEqual(rec3.Records[:survivors], rec.Records) {
		t.Fatalf("resumed WAL disturbed the recovered prefix")
	}
	if !reflect.DeepEqual(rec3.Records[survivors:], app2.applied()) {
		t.Fatalf("resumed WAL lost post-recovery records")
	}
}

// TestConcurrentHealthReaders: watermark/health readers race the appender;
// run under -race this guards the locking discipline.
func TestConcurrentHealthReaders(t *testing.T) {
	fs := NewFaultFS()
	app := &recApplier{}
	log := updatelog.New(app, 0)
	w := openWAL(t, fs, Options{Sync: SyncInterval(time.Millisecond), SegmentBytes: 512})
	if err := w.Follow(log); err != nil {
		t.Fatalf("Follow: %v", err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = w.Health()
					_ = w.DurableSeq()
					_ = w.Healthy()
				}
			}
		}()
	}
	submitMixed(t, log, 300)
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	close(stop)
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
