#!/usr/bin/env bash
# End-to-end smoke test of the serving node against a real filesystem and a
# real HTTP listener. It exercises the full robustness story the unit tests
# cover in-process:
#
#   1. serve two venues from one snapshot directory
#   2. hot swap: drop a newer snapshot mid-traffic — the epoch advances, the
#      new object set answers, and not one request fails across the swap
#   3. quarantine: drop a torn snapshot — /statsz shows it quarantined with
#      the typed reason while the previous version keeps serving
#   4. graceful drain: SIGTERM exits 0 with a drain summary
#
# Usage: scripts/servenode_smoke.sh [workdir]   (run from the repo root)
set -euo pipefail

WORK=${1:-$(mktemp -d)}
SNAPS=$WORK/snaps
mkdir -p "$SNAPS" "$WORK/wal"
ADDR=127.0.0.1:${SERVENODE_PORT:-18080}
BASE="http://$ADDR"

echo "== build"
go build -o "$WORK/servenode" ./cmd/servenode
go build -o "$WORK/indexbuild" ./cmd/indexbuild

echo "== publish initial snapshots (two venues)"
"$WORK/indexbuild" -venue Men -scale tiny -index vip -objects 40 -out "$SNAPS/men@0001.snap"
"$WORK/indexbuild" -venue MC -scale tiny -index vip -objects 30 -out "$SNAPS/mc@0001.snap"
# The v2 snapshot (60 objects, vs 40 in v1) is built up-front so the
# mid-traffic publish below is a single atomic rename.
"$WORK/indexbuild" -venue Men -scale tiny -index vip -objects 60 -out "$WORK/men-v2.snap"

echo "== start servenode on $ADDR"
"$WORK/servenode" -snapshots "$SNAPS" -wal "$WORK/wal" -listen "$ADDR" -poll 100ms \
  2>"$WORK/servenode.log" &
NODE=$!
cleanup() { kill "$NODE" 2>/dev/null || true; }
trap cleanup EXIT

for _ in $(seq 1 100); do
  curl -fsS "$BASE/readyz" >/dev/null 2>&1 && break
  kill -0 "$NODE" 2>/dev/null || { echo "servenode died:"; cat "$WORK/servenode.log"; exit 1; }
  sleep 0.1
done
curl -fsS "$BASE/readyz" | jq -e '.ready == true' >/dev/null
echo "ready"

# A small batch: a kNN whose k exceeds every object count (so the result
# count fingerprints the snapshot version) plus a distance query.
Q='{"queries":[{"kind":"knn","s":{"partition":0,"x":1,"y":1},"k":100},{"kind":"distance","s":{"partition":0,"x":1,"y":1},"t":{"partition":1,"x":1,"y":1}}]}'
query() { curl -fsS -X POST -d "$Q" "$BASE/query/$1"; }

echo "== both venues answer"
query men | jq -e '.epoch == 1 and (.results[0].objects | length) == 40 and (.results | map(.err // empty) | length) == 0' >/dev/null
query mc | jq -e '.epoch == 1 and (.results[0].objects | length) == 30' >/dev/null
curl -fsS "$BASE/healthz/men" | jq -e '.state == "serving" and .healthy and .durable' >/dev/null

echo "== hot swap mid-traffic"
: >"$WORK/failures"
(
  for _ in $(seq 1 150); do
    code=$(curl -s -o /dev/null -w '%{http_code}' -X POST -d "$Q" "$BASE/query/men")
    [ "$code" = 200 ] || echo "$code" >>"$WORK/failures"
  done
) &
TRAFFIC=$!
sleep 0.3
cp "$WORK/men-v2.snap" "$WORK/men-v2.tmp" && mv "$WORK/men-v2.tmp" "$SNAPS/men@0002.snap"
wait "$TRAFFIC"
if [ -s "$WORK/failures" ]; then
  echo "requests failed across the swap:"; sort "$WORK/failures" | uniq -c; exit 1
fi
for _ in $(seq 1 100); do
  query men | jq -e '.epoch == 2' >/dev/null 2>&1 && break
  sleep 0.1
done
query men | jq -e '.epoch == 2 and (.results[0].objects | length) == 60' >/dev/null
curl -fsS "$BASE/statsz" | jq -e '.venues.men.swaps == 2 and .venues.men.snapshot == "men@0002.snap"' >/dev/null
echo "swapped to men@0002.snap with zero failed requests"

echo "== torn snapshot is quarantined, old version keeps serving"
head -c 1000 "$WORK/men-v2.snap" >"$SNAPS/men@0003.snap"
for _ in $(seq 1 100); do
  curl -fsS "$BASE/statsz" | jq -e '.venues.men.quarantined[0].reason == "truncated"' >/dev/null 2>&1 && break
  sleep 0.1
done
curl -fsS "$BASE/statsz" | jq -e '
  .venues.men.quarantined[0].file == "men@0003.snap"
  and .venues.men.quarantined[0].reason == "truncated"
  and .venues.men.snapshot == "men@0002.snap"' >/dev/null
query men | jq -e '.epoch == 2 and (.results[0].objects | length) == 60' >/dev/null
echo "quarantined with reason=truncated, men@0002.snap still serving"

echo "== SIGTERM drains cleanly"
kill -TERM "$NODE"
if ! wait "$NODE"; then
  echo "servenode exited non-zero on SIGTERM:"; cat "$WORK/servenode.log"; exit 1
fi
trap - EXIT
grep -q "drained:" "$WORK/servenode.log" || { echo "no drain summary:"; cat "$WORK/servenode.log"; exit 1; }
grep "drained:" "$WORK/servenode.log"

echo "PASS"
