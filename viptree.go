// Package viptree is the public API of this repository: a Go implementation
// of the IP-Tree and VIP-Tree indoor spatial indexes from
//
//	Zhou Shao, Muhammad Aamir Cheema, David Taniar, Hua Lu.
//	"VIP-Tree: An Effective Index for Indoor Spatial Queries."
//	PVLDB 10(4): 325–336, 2016.
//
// The package exposes the indoor data model (venues built from partitions
// and doors), synthetic venue generators matching the paper's data sets, the
// IP-Tree and VIP-Tree indexes with shortest-distance, shortest-path, k
// nearest neighbour and range queries, and the baselines used in the paper's
// evaluation (distance matrix, distance-aware model, G-tree, ROAD).
//
// The query stack is organised in three layers:
//
//   - Model layer: venues, partitions, doors and the door-to-door graph
//     (NewVenueBuilder, GenerateBuilding, GenerateCampus, …).
//   - Index layer: the six indexes, all implementing the uniform capability
//     interface Index (Distance, Path, MemoryBytes, Stats) and producing
//     object queriers for kNN/range queries (ObjectIndexer).
//   - Engine layer: a concurrent query engine (NewEngine) with typed
//     queries, a batch API and a worker-pool executor safe for parallel
//     callers. Index hot paths are allocation-free on the warm path, so the
//     engine scales across cores without contending on the allocator.
//
// # Quickstart
//
//	venue := viptree.MustGenerateBuilding(viptree.BuildingConfig{
//		Name: "office", Floors: 5, RoomsPerHallway: 30,
//	})
//	tree := viptree.MustBuildVIPTree(venue)
//	rng := rand.New(rand.NewSource(1))
//	s, t := venue.RandomLocation(rng), venue.RandomLocation(rng)
//	fmt.Println(tree.Distance(s, t))
//
// # Serving queries concurrently
//
//	objects := []viptree.Location{...}
//	eng := viptree.NewEngine(tree, viptree.EngineOptions{
//		Objects: tree.IndexObjects(objects),
//	})
//	results := eng.ExecuteBatch([]viptree.Query{
//		{Kind: viptree.QueryDistance, S: s, T: t},
//		{Kind: viptree.QueryKNN, S: s, K: 5},
//	})
//
// # Moving objects
//
// The object index is mutable: Insert, Delete and Move update only the
// leaf (or pair of leaves) containing the object and are safe to call
// while queries are being served — the paper's moving-objects scenario.
// Updates can also be submitted through the engine (QueryInsert,
// QueryDelete, QueryMove), freely mixed with reads in one batch:
//
//	objIndex := tree.IndexObjects(objects)
//	id, _ := objIndex.Insert(loc)   // cost: the leaf containing loc
//	_ = objIndex.Move(id, elsewhere) // cost: source + target leaf
//	_ = objIndex.Delete(id)
//
// Internally every mutation flows through a single-writer update log
// (UpdateLog) that applies updates to a writer-private shadow and
// atomically publishes immutable epochs; queries pin an epoch with one
// atomic pointer load, so the read path performs no lock operations at
// all and each result reflects exactly a prefix of the update log — a
// cross-leaf Move is atomic from a reader's view. Every applied update
// carries a monotonic gap-free sequence number, and external systems can
// tail the ordered change feed:
//
//	sub, _ := objIndex.ChangeLog().Subscribe(0, 256)
//	for rec := range sub.Events() { ... } // every update, in order
//
// See the examples directory for complete programs.
package viptree

import (
	"io"

	"viptree/internal/baseline/distaware"
	"viptree/internal/baseline/distmatrix"
	"viptree/internal/baseline/gtree"
	"viptree/internal/baseline/road"
	"viptree/internal/engine"
	"viptree/internal/geom"
	"viptree/internal/index"
	"viptree/internal/iptree"
	"viptree/internal/model"
	"viptree/internal/serial"
	"viptree/internal/snapshot"
	"viptree/internal/updatelog"
	"viptree/internal/venuegen"
	"viptree/internal/wal"
)

// Core data-model types.
type (
	// Venue is a complete indoor space: partitions connected by doors.
	Venue = model.Venue
	// VenueBuilder assembles a venue incrementally.
	VenueBuilder = model.Builder
	// Location is a point inside a specific partition of a venue.
	Location = model.Location
	// Point is a three-dimensional indoor coordinate (x, y, floor).
	Point = geom.Point
	// Rect is an axis-aligned partition footprint on one floor.
	Rect = geom.Rect
	// DoorID identifies a door within a venue.
	DoorID = model.DoorID
	// PartitionID identifies an indoor partition within a venue.
	PartitionID = model.PartitionID
	// PartitionClass describes the real-world role of a partition.
	PartitionClass = model.Class
	// VenueStats summarises a venue (Table 2 of the paper).
	VenueStats = model.Stats
)

// Partition classes for venue construction.
const (
	Room      = model.ClassRoom
	Hallway   = model.ClassHallway
	Staircase = model.ClassStaircase
	Lift      = model.ClassLift
	Escalator = model.ClassEscalator
	// NoPartition marks the exterior side of an entrance door.
	NoPartition = model.NoPartition
)

// Index types.
type (
	// IPTree is the Indoor Partitioning Tree index.
	IPTree = iptree.Tree
	// VIPTree is the Vivid IP-Tree index (IP-Tree plus per-door
	// materialised ancestor distances).
	VIPTree = iptree.VIPTree
	// TreeOptions configures IP-Tree/VIP-Tree construction, including the
	// construction worker count (Parallelism; builds are bit-identical at
	// any value) and the paper's ablation switches.
	TreeOptions = iptree.Options
	// TreeBuildTimings reports the per-phase construction wall clock of a
	// built tree (Tree.BuildTimings).
	TreeBuildTimings = iptree.BuildTimings
	// TreeStats reports ρ, f, M and related structural statistics.
	TreeStats = iptree.Stats
	// ObjectIndex embeds a set of objects into a tree for kNN/range
	// queries. It is mutable: Insert, Delete and Move update only the leaf
	// (or pair of leaves) containing the object and run safely while
	// queries are being served.
	ObjectIndex = iptree.ObjectIndex
	// ObjectID identifies an object within an ObjectIndex.
	ObjectID = iptree.ObjectID
	// ObjectResult is a single kNN or range query result.
	ObjectResult = index.ObjectResult
	// MutableObjectIndexer is the capability interface of object queriers
	// that support live Insert/Delete/Move; the IP-Tree and VIP-Tree
	// object indexes implement it.
	MutableObjectIndexer = index.MutableObjectIndexer
	// ChangeLogger is the capability interface of mutable object indexes
	// whose updates flow through a single-writer update log with
	// lock-free epoch reads and an exportable change feed; the
	// IP-Tree and VIP-Tree object indexes implement it.
	ChangeLogger = index.ChangeLogger
	// UpdateLog is the single-writer combining log behind a mutable
	// object index: it assigns monotonic gap-free sequence numbers,
	// publishes immutable epochs and serves the ordered change feed.
	UpdateLog = updatelog.Log
	// UpdateRecord is one applied update in the log: sequence number,
	// operation and the object it touched.
	UpdateRecord = updatelog.Record
	// UpdateOp is the operation kind of an UpdateRecord.
	UpdateOp = updatelog.Op
	// ChangeSubscription is a live subscription to the change feed,
	// delivering every applied update exactly once, in order.
	ChangeSubscription = updatelog.Subscription
	// DistanceQuerier is the query interface shared by all indexes.
	DistanceQuerier = index.DistanceQuerier
	// ObjectQuerier is the object-query interface shared by all indexes.
	ObjectQuerier = index.ObjectQuerier
	// Index is the uniform capability interface implemented by all six
	// indexes: Name, Distance, Path, MemoryBytes and Stats.
	Index = index.Index
	// ObjectIndexer is an Index that can embed a set of objects for
	// kNN/range queries.
	ObjectIndexer = index.ObjectIndexer
	// FullIndex is the complete capability surface (Index plus KNN/Range);
	// build one with CombineIndex or IndexWithObjects.
	FullIndex = index.Full
	// LocationPair is one source/target pair of a batched distance query.
	LocationPair = index.LocationPair
	// DistanceBatcher is the capability interface of indexes that answer
	// many distance queries in one call, sharing work between queries; the
	// IP-Tree and VIP-Tree implement it and the engine's batched query
	// planner uses it automatically.
	DistanceBatcher = index.DistanceBatcher
	// KNNQuery is one query of a batched kNN call (query point and result
	// count).
	KNNQuery = index.KNNQuery
	// RangeQuery is one query of a batched range call (query point and
	// distance bound).
	RangeQuery = index.RangeQuery
	// KNNBatcher is the capability interface of object queriers that answer
	// many kNN queries in one call, sharing the per-source climbs; the
	// IP-Tree and VIP-Tree object indexes implement it and the engine's
	// batched query planner uses it automatically.
	KNNBatcher = index.KNNBatcher
	// RangeBatcher is the batched-range counterpart of KNNBatcher.
	RangeBatcher = index.RangeBatcher
	// ClimbCacheStats is a snapshot of the climb cache counters of a tree
	// (hits, misses, evictions, residency and climb sweeps).
	ClimbCacheStats = index.ClimbCacheStats
	// ClimbCacheReporter is implemented by object queriers that maintain a
	// climb cache and report its counters.
	ClimbCacheReporter = index.ClimbCacheReporter
	// IndexStats is the uniform construction metadata reported by Stats.
	IndexStats = index.Stats
)

// Query-engine types: the concurrent execution layer over the indexes.
type (
	// Engine executes typed queries against one index, sequentially or over
	// a worker pool; it is safe for concurrent callers.
	Engine = engine.Engine
	// EngineOptions configures engine construction (worker count, object
	// querier for kNN/range queries).
	EngineOptions = engine.Options
	// EngineStats counts the queries executed per kind.
	EngineStats = engine.Stats
	// Query is one typed query submitted to an engine.
	Query = engine.Query
	// QueryKind selects the query type (QueryDistance, QueryPath, QueryKNN,
	// QueryRange).
	QueryKind = engine.Kind
	// QueryResult is the outcome of one engine query.
	QueryResult = engine.Result
)

// Query kinds accepted by Engine.Execute and Engine.ExecuteBatch. The first
// four are reads; QueryInsert, QueryDelete and QueryMove are object updates
// executed against a mutable object index (the IP-Tree/VIP-Tree ObjectIndex)
// and can be mixed freely with reads in one batch.
const (
	QueryDistance = engine.KindDistance
	QueryPath     = engine.KindPath
	QueryKNN      = engine.KindKNN
	QueryRange    = engine.KindRange
	QueryInsert   = engine.KindInsert
	QueryDelete   = engine.KindDelete
	QueryMove     = engine.KindMove
)

// Operation kinds of an UpdateRecord in the change feed.
const (
	UpdateInsert = updatelog.OpInsert
	UpdateDelete = updatelog.OpDelete
	UpdateMove   = updatelog.OpMove
)

// ErrNoObjectIndex is reported by kNN/range queries on an engine built
// without an object querier.
var ErrNoObjectIndex = engine.ErrNoObjectIndex

// ErrImmutableObjects is reported by insert/delete/move queries on an engine
// whose object querier does not support live updates (the baselines).
var ErrImmutableObjects = engine.ErrImmutableObjects

// ErrNoSuchObject is reported by object updates addressing an ID that was
// never allocated or has been deleted.
var ErrNoSuchObject = iptree.ErrNoSuchObject

// NewEngine returns a concurrent query engine over the index. Attach an
// object querier through EngineOptions.Objects to serve kNN and range
// queries; set EngineOptions.Workers to bound batch parallelism (zero
// selects GOMAXPROCS).
func NewEngine(ix Index, opts EngineOptions) *Engine { return engine.New(ix, opts) }

// CombineIndex glues a distance index and an object querier into the full
// capability interface.
func CombineIndex(ix Index, objects ObjectQuerier) FullIndex { return index.Combine(ix, objects) }

// IndexWithObjects embeds the objects into the indexer and returns the full
// capability interface over the pair.
func IndexWithObjects(ix ObjectIndexer, objects []Location) FullIndex {
	return index.WithObjects(ix, objects)
}

// Baseline index types used by the paper's evaluation.
type (
	// DistanceMatrix is the DistMx baseline (O(D²) materialisation).
	DistanceMatrix = distmatrix.Matrix
	// DistAware is the expansion-based distance-aware model baseline.
	DistAware = distaware.Index
	// GTree is the G-tree road-network index adapted to indoor graphs.
	GTree = gtree.Tree
	// GTreeOptions configures G-tree construction.
	GTreeOptions = gtree.Options
	// Road is the ROAD route-overlay index adapted to indoor graphs.
	Road = road.Index
	// RoadOptions configures ROAD construction.
	RoadOptions = road.Options
)

// Venue generation types (synthetic stand-ins for the paper's floor plans).
type (
	// BuildingConfig parameterises a synthetic multi-floor building.
	BuildingConfig = venuegen.BuildingConfig
	// CampusConfig parameterises a synthetic multi-building campus.
	CampusConfig = venuegen.CampusConfig
	// Scale selects tiny/small/full preset venue sizes.
	Scale = venuegen.Scale
)

// Preset scales.
const (
	ScaleTiny  = venuegen.ScaleTiny
	ScaleSmall = venuegen.ScaleSmall
	ScaleFull  = venuegen.ScaleFull
)

// NewVenueBuilder returns a builder for constructing a venue by hand.
func NewVenueBuilder(name string) *VenueBuilder { return model.NewBuilder(name) }

// GenerateBuilding generates a synthetic multi-floor building.
func GenerateBuilding(cfg BuildingConfig) (*Venue, error) { return venuegen.Building(cfg) }

// MustGenerateBuilding is GenerateBuilding but panics on error.
func MustGenerateBuilding(cfg BuildingConfig) *Venue { return venuegen.MustBuilding(cfg) }

// GenerateCampus generates a synthetic multi-building campus.
func GenerateCampus(cfg CampusConfig) (*Venue, error) { return venuegen.Campus(cfg) }

// MustGenerateCampus is GenerateCampus but panics on error.
func MustGenerateCampus(cfg CampusConfig) *Venue { return venuegen.MustCampus(cfg) }

// Replicate stacks copies of a venue connected by staircases (the MC-2,
// Men-2, CL-2 construction of the paper).
func Replicate(v *Venue, copies int, stairCost float64) (*Venue, error) {
	return venuegen.Replicate(v, copies, stairCost)
}

// MelbourneCentral, Menzies and Clayton return synthetic venues with the
// statistical shape of the paper's three real data sets (Table 2).
func MelbourneCentral(s Scale) *Venue { return venuegen.MelbourneCentral(s) }

// Menzies returns the office-building-like preset venue.
func Menzies(s Scale) *Venue { return venuegen.Menzies(s) }

// Clayton returns the campus-like preset venue.
func Clayton(s Scale) *Venue { return venuegen.Clayton(s) }

// PaperExample returns the small hand-crafted venue used in documentation
// and tests (in the spirit of Fig. 1 of the paper).
func PaperExample() *Venue { return venuegen.PaperExample() }

// BuildIPTree builds an IP-Tree over a venue with default options (t = 2).
func BuildIPTree(v *Venue) (*IPTree, error) { return iptree.BuildIPTree(v, iptree.Options{}) }

// MustBuildIPTree is BuildIPTree but panics on error.
func MustBuildIPTree(v *Venue) *IPTree { return iptree.MustBuildIPTree(v, iptree.Options{}) }

// BuildIPTreeWithOptions builds an IP-Tree with explicit options.
func BuildIPTreeWithOptions(v *Venue, opts TreeOptions) (*IPTree, error) {
	return iptree.BuildIPTree(v, opts)
}

// BuildVIPTree builds a VIP-Tree over a venue with default options (t = 2).
func BuildVIPTree(v *Venue) (*VIPTree, error) { return iptree.BuildVIPTree(v, iptree.Options{}) }

// MustBuildVIPTree is BuildVIPTree but panics on error.
func MustBuildVIPTree(v *Venue) *VIPTree { return iptree.MustBuildVIPTree(v, iptree.Options{}) }

// BuildVIPTreeWithOptions builds a VIP-Tree with explicit options.
func BuildVIPTreeWithOptions(v *Venue, opts TreeOptions) (*VIPTree, error) {
	return iptree.BuildVIPTree(v, opts)
}

// MustBuildVIPTreeWithDegree builds a VIP-Tree with the given minimum degree
// t (Fig 7 evaluates t between 2 and 100); it panics on error.
func MustBuildVIPTreeWithDegree(v *Venue, minDegree int) *VIPTree {
	return iptree.MustBuildVIPTree(v, iptree.Options{MinDegree: minDegree})
}

// BuildDistanceMatrix builds the DistMx baseline (with the no-through-door
// optimisation enabled).
func BuildDistanceMatrix(v *Venue) *DistanceMatrix { return distmatrix.Build(v, true) }

// BuildDistanceMatrixNoOpt builds the DistMx-- variant of Fig 9a: the full
// distance matrix without the no-through-door query optimisation.
func BuildDistanceMatrixNoOpt(v *Venue) *DistanceMatrix { return distmatrix.Build(v, false) }

// NewDistAware returns the expansion-based DistAw baseline.
func NewDistAware(v *Venue) *DistAware { return distaware.New(v) }

// BuildGTree builds the G-tree baseline.
func BuildGTree(v *Venue, opts GTreeOptions) *GTree { return gtree.Build(v, opts) }

// BuildRoad builds the ROAD baseline.
func BuildRoad(v *Venue, opts RoadOptions) *Road { return road.Build(v, opts) }

// SaveVenue persists a venue to a file so large generated venues can be
// reused across runs.
func SaveVenue(path string, v *Venue) error { return serial.Save(path, v) }

// LoadVenue loads a venue previously written by SaveVenue, re-validating it
// and rebuilding its door-to-door graph.
func LoadVenue(path string) (*Venue, error) { return serial.Load(path) }

// Snapshot persistence: build an index once, serialise it, and serve from the
// loaded copy without re-running construction.
type (
	// Snapshotter is an index whose fully built state can be exported to a
	// snapshot and restored without re-running construction. The IP-Tree and
	// VIP-Tree implement it.
	Snapshotter = index.Snapshotter
	// IndexSnapshot is a loaded snapshot: the venue, the restored index and
	// an optional embedded object index.
	IndexSnapshot = snapshot.Snapshot
)

// Snapshot corruption/version errors reported by ReadSnapshot and
// LoadSnapshot. Version mismatches are reported as *snapshot.VersionError.
var (
	// ErrNotSnapshot reports a file that is not a snapshot at all.
	ErrNotSnapshot = snapshot.ErrNotSnapshot
	// ErrSnapshotTruncated reports a short or cut-off snapshot file.
	ErrSnapshotTruncated = snapshot.ErrTruncated
	// ErrSnapshotChecksum reports payload corruption.
	ErrSnapshotChecksum = snapshot.ErrChecksum
)

// WriteSnapshot serialises a fully built index (and, optionally, an object
// index built over it — pass nil to omit) into the versioned snapshot
// container. The venue must be the one the index was built over.
func WriteSnapshot(w io.Writer, v *Venue, ix Snapshotter, objects *ObjectIndex) error {
	return snapshot.Write(w, v, ix, objects)
}

// ReadSnapshot loads a snapshot, validating the header and checksum, and
// restores the index without re-running construction. The loaded index
// answers bit-identical queries to the one that was written.
func ReadSnapshot(r io.Reader) (*IndexSnapshot, error) { return snapshot.Read(r) }

// SaveSnapshot writes a snapshot to a file, creating or truncating it.
func SaveSnapshot(path string, v *Venue, ix Snapshotter, objects *ObjectIndex) error {
	return snapshot.Save(path, v, ix, objects)
}

// LoadSnapshot reads a snapshot from a file written by SaveSnapshot.
func LoadSnapshot(path string) (*IndexSnapshot, error) { return snapshot.Load(path) }

// Durability: a segmented write-ahead log makes object updates crash-safe.
// Open an engine with EngineOptions.WALDir set (via OpenEngine) and every
// update applied by the index is appended to an on-disk log and fsynced per
// the configured policy; after a crash the next OpenEngine replays the log
// over the loaded snapshot, truncating any torn tail left by the crash.
type (
	// WAL is the segmented, CRC-framed write-ahead log. Through it callers
	// observe the durable watermark (DurableSeq), force an fsync (Flush) and
	// reclaim segments covered by a snapshot (Checkpoint).
	WAL = wal.WAL
	// WALOptions configures the log: directory, segment size, fsync policy
	// (SyncAlways, SyncInterval, SyncOnRotate) and the retry/probe timings
	// of degraded mode.
	WALOptions = wal.Options
	// WALSyncPolicy picks when appended records are fsynced — the
	// durability/throughput trade-off.
	WALSyncPolicy = wal.SyncPolicy
	// WALHealth is a point-in-time health snapshot of the log: state,
	// watermarks, segment count and the error behind a degradation.
	WALHealth = wal.Health
	// WALState is the log's lifecycle state (healthy, degraded, closed).
	WALState = wal.State
	// WALCorruptionError reports mid-log corruption found during recovery —
	// damage that cannot be explained by a torn final write and therefore
	// refuses to load rather than silently dropping records.
	WALCorruptionError = wal.CorruptionError
	// WALRecoveryReport describes what OpenEngine reconstructed: records
	// scanned and replayed, torn-tail truncation, and the scan/replay split
	// of the recovery wall clock.
	WALRecoveryReport = engine.WALRecovery
	// EngineHealth reports whether a durable engine currently accepts
	// updates; see Engine.Health.
	EngineHealth = engine.Health
)

// Fsync policies for WALOptions.Sync.
var (
	// SyncAlways fsyncs after every applied batch: an acknowledged-durable
	// update is never lost, at the cost of one fsync per batch.
	SyncAlways = wal.SyncAlways
	// SyncInterval fsyncs at most every d: bounded data loss, higher
	// throughput.
	SyncInterval = wal.SyncInterval
	// SyncOnRotate fsyncs only at segment boundaries: fastest, loses up to
	// a segment on crash.
	SyncOnRotate = wal.SyncOnRotate
)

// ErrWALDegradedReadOnly is reported by updates while the write-ahead log
// cannot reach its disk: the engine serves reads and rejects writes rather
// than acknowledging updates it cannot persist, and resumes automatically
// once a disk probe succeeds.
var ErrWALDegradedReadOnly = wal.ErrDegradedReadOnly

// ErrWALCorrupt is the sentinel wrapped by every *WALCorruptionError.
var ErrWALCorrupt = wal.ErrCorrupt

// OpenEngine is NewEngine plus durability: it recovers the write-ahead log
// under opts.WALDir (replaying whatever the restored object index does not
// already cover), attaches the log to the index's change feed, and returns
// the recovery report alongside the engine. Close the engine to flush and
// release the log.
//
//	eng, rep, err := viptree.OpenEngine(tree, viptree.EngineOptions{
//		Objects: tree.IndexObjects(objects),
//		WALDir:  "/var/lib/vip/wal",
//	})
func OpenEngine(ix Index, opts EngineOptions) (*Engine, *WALRecoveryReport, error) {
	return engine.Open(ix, opts)
}
