package viptree_test

import (
	"math"
	"math/rand"
	"testing"

	"viptree"
)

// TestPublicAPIRoundTrip exercises the public facade end to end: build a
// venue with the builder, generate preset venues, build every index and
// cross-check a handful of queries between them.
func TestPublicAPIRoundTrip(t *testing.T) {
	venue := viptree.PaperExample()
	if venue.NumPartitions() != 17 || venue.NumDoors() != 20 {
		t.Fatalf("unexpected paper example size: %d partitions, %d doors", venue.NumPartitions(), venue.NumDoors())
	}

	ip, err := viptree.BuildIPTree(venue)
	if err != nil {
		t.Fatal(err)
	}
	vip, err := viptree.BuildVIPTree(venue)
	if err != nil {
		t.Fatal(err)
	}
	dm := viptree.BuildDistanceMatrix(venue)
	da := viptree.NewDistAware(venue)
	gt := viptree.BuildGTree(venue, viptree.GTreeOptions{LeafSize: 8})
	rd := viptree.BuildRoad(venue, viptree.RoadOptions{RnetSize: 8})

	rng := rand.New(rand.NewSource(2024))
	for i := 0; i < 50; i++ {
		s := venue.RandomLocation(rng)
		d := venue.RandomLocation(rng)
		want := da.Distance(s, d) // plain expansion = ground truth
		for _, q := range []viptree.DistanceQuerier{ip, vip, dm, gt, rd} {
			got := q.Distance(s, d)
			if math.Abs(got-want) > 1e-6 {
				t.Fatalf("%s disagrees with ground truth: %v vs %v", q.Name(), got, want)
			}
		}
	}
}

func TestPublicAPIBuilderAndObjects(t *testing.T) {
	b := viptree.NewVenueBuilder("api-test")
	hall := b.AddPartition("hall", viptree.Hallway, viptree.Rect{MaxX: 30, MaxY: 4}, 0)
	var rooms []viptree.PartitionID
	for i := 0; i < 5; i++ {
		x0 := float64(i) * 6
		r := b.AddPartition("room", viptree.Room, viptree.Rect{MinX: x0, MinY: 4, MaxX: x0 + 6, MaxY: 10}, 0)
		b.AddDoor("d", viptree.Point{X: x0 + 3, Y: 4}, r, hall)
		rooms = append(rooms, r)
	}
	b.AddDoor("exit", viptree.Point{X: 0, Y: 2}, hall, viptree.NoPartition)
	venue, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tree := viptree.MustBuildVIPTree(venue)
	objs := []viptree.Location{
		{Partition: rooms[4], Point: viptree.Point{X: 27, Y: 7}},
		{Partition: rooms[0], Point: viptree.Point{X: 3, Y: 7}},
	}
	oi := tree.IndexObjects(objs)
	q := viptree.Location{Partition: rooms[1], Point: viptree.Point{X: 9, Y: 7}}
	res := oi.KNN(q, 1)
	if len(res) != 1 || res[0].ObjectID != 1 {
		t.Fatalf("expected the room-0 object to be nearest, got %v", res)
	}
	within := oi.Range(q, 1000)
	if len(within) != 2 {
		t.Fatalf("range should return both objects, got %v", within)
	}
}

func TestPublicAPIGeneratorsAndReplication(t *testing.T) {
	building, err := viptree.GenerateBuilding(viptree.BuildingConfig{Name: "b", Floors: 2, RoomsPerHallway: 8})
	if err != nil {
		t.Fatal(err)
	}
	campus, err := viptree.GenerateCampus(viptree.CampusConfig{Name: "c", Buildings: 2,
		Building: viptree.BuildingConfig{Floors: 1, RoomsPerHallway: 5}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := viptree.Replicate(building, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Floors() != 2*building.Floors() {
		t.Errorf("replicated floors = %d, want %d", rep.Floors(), 2*building.Floors())
	}
	for _, v := range []*viptree.Venue{building, campus, rep} {
		if _, err := viptree.BuildVIPTree(v); err != nil {
			t.Errorf("BuildVIPTree(%s): %v", v.Name, err)
		}
	}
	if viptree.MelbourneCentral(viptree.ScaleTiny).NumDoors() == 0 {
		t.Error("MelbourneCentral tiny preset is empty")
	}
	if viptree.Menzies(viptree.ScaleTiny).NumDoors() == 0 {
		t.Error("Menzies tiny preset is empty")
	}
	if viptree.Clayton(viptree.ScaleTiny).NumDoors() == 0 {
		t.Error("Clayton tiny preset is empty")
	}
}

func TestPublicAPIDegreeAndAblationOptions(t *testing.T) {
	v := viptree.MelbourneCentral(viptree.ScaleTiny)
	deg := viptree.MustBuildVIPTreeWithDegree(v, 10)
	noSup, err := viptree.BuildVIPTreeWithOptions(v, viptree.TreeOptions{DisableSuperiorDoors: true})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := viptree.BuildVIPTreeWithOptions(v, viptree.TreeOptions{NaiveMerge: true})
	if err != nil {
		t.Fatal(err)
	}
	ground := viptree.NewDistAware(v)
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 30; i++ {
		s := v.RandomLocation(rng)
		d := v.RandomLocation(rng)
		want := ground.Distance(s, d)
		for _, q := range []*viptree.VIPTree{deg, noSup, naive} {
			if got := q.Distance(s, d); math.Abs(got-want) > 1e-6 {
				t.Fatalf("variant disagrees with ground truth: %v vs %v", got, want)
			}
		}
	}
	noOpt := viptree.BuildDistanceMatrixNoOpt(v)
	if noOpt.Name() != "DistMx--" {
		t.Errorf("unexpected name %q", noOpt.Name())
	}
}
